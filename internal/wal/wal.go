// Package wal implements the segmented append-only write-ahead log that
// gives the exertion space and the lookup registry crash-consistent
// durability. The paper's substrates lean on a persistent JavaSpaces
// (Outrigger) and a durable Jini registrar: a Spacer-federated exertion
// survives provider restarts because the space outlives the process. This
// package supplies the missing persistence in the ARIES / ZooKeeper shape:
// an append-only redo log with length+CRC32 framing, periodic snapshots,
// segment compaction, and deterministic replay.
//
// Records are opaque byte payloads framed as
//
//	4B little-endian length | 4B little-endian CRC32(payload) | payload
//
// and numbered by a monotonically increasing sequence. Segments are files
// named wal-<firstseq>.seg; a snapshot file snap-<seq>.snap supersedes
// every record with sequence <= seq, after which older segments are
// compacted away. Opening a log truncates a torn tail — a partial or
// CRC-corrupt final record left by a crash mid-write — so the log always
// reopens to the longest acknowledged prefix.
//
// Crash points are first-class fault sites (FaultSiteAppend, FaultSiteSync,
// FaultSiteSnapshot) consulted through an injected faults.Injector, and
// ArmTornWrites makes an injected append failure leave a seeded-random
// partial frame on disk — the chaos suite's "kill the process mid-write at
// a randomized offset".
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/faults"
)

// Fault-injection site suffixes appended to the base site handed to
// SetFaultInjector. They are the log's three crash points: a record append,
// an fsync, and a snapshot write.
const (
	// FaultSiteAppend is consulted by Append before framing a record.
	// Injected errors fail the append; with ArmTornWrites armed, a seeded
	// random prefix of the frame is left on disk first — a torn write.
	// Either way the log is failed afterwards, like a process that died.
	FaultSiteAppend = "/wal/append"
	// FaultSiteSync is consulted by Sync (and the per-append sync).
	// Injected errors fail the log: an fsync whose outcome is unknown
	// cannot be retried safely.
	FaultSiteSync = "/wal/sync"
	// FaultSiteSnapshot is consulted by WriteSnapshot before the snapshot
	// file is staged. Injected errors abandon the snapshot; the log and
	// its segments are untouched.
	FaultSiteSnapshot = "/wal/snapshot"
)

// Errors returned by log operations.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("wal: log closed")
	// ErrFailed is returned once a previous append or sync failed: the
	// log behaves like a crashed process and refuses further writes.
	ErrFailed = errors.New("wal: log failed; reopen to recover")
	// ErrCorrupt reports corruption that torn-tail truncation cannot
	// explain — a bad record before the final segment's tail.
	ErrCorrupt = errors.New("wal: log corrupt")
)

const (
	headerSize = 8
	// maxRecordSize bounds a single record; a length beyond it is treated
	// as corruption rather than an allocation request.
	maxRecordSize = 64 << 20
	// DefaultSegmentLimit is the rotation threshold for segment files.
	DefaultSegmentLimit = 1 << 20

	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

// Option configures a Log.
type Option func(*Log)

// WithClock injects the clock used to timestamp snapshots (default real).
func WithClock(c clockwork.Clock) Option {
	return func(l *Log) { l.clock = c }
}

// WithSegmentLimit sets the size at which the active segment rotates.
func WithSegmentLimit(bytes int64) Option {
	return func(l *Log) {
		if bytes > 0 {
			l.segLimit = bytes
		}
	}
}

// WithSyncEveryAppend controls whether each Append fsyncs before being
// acknowledged (default true — an acked record survives a crash). Turning
// it off trades the post-crash durability of the unsynced suffix for
// throughput; the torn-tail scan still recovers the longest valid prefix.
func WithSyncEveryAppend(sync bool) Option {
	return func(l *Log) { l.syncEach = sync }
}

// Group-commit defaults: how many records one leader's fsync may
// acknowledge, and the longest a leader lingers for followers before its
// fsync. The linger only happens when the workload looks concurrent
// (appenders en route to the lock, or a previous batch that actually
// coalesced), so a strictly sequential appender never pays it.
const (
	DefaultGroupBatch = 1024
	DefaultGroupWait  = 50 * time.Microsecond
)

// WithGroupCommit tunes the durable-append batching. Synced appends
// coalesce leader/follower style: the first appender needing durability
// becomes the leader and fsyncs once for every record written so far
// (bounded by maxBatch); appends arriving during that fsync form the next
// batch. maxWait bounds how long the leader additionally lingers — on the
// injected clock, and only when other appenders look imminent — so the
// followers a batch just woke can land their next records in this one,
// trading bounded ack latency for an fsync shared by the whole group.
// Durability semantics are unchanged — no append is acknowledged before
// the fsync covering it returns.
//
// WithGroupCommit(1, 0) degenerates to the historical one-fsync-per-append
// behavior (the baseline the group-commit benchmarks compare against).
func WithGroupCommit(maxBatch int, maxWait time.Duration) Option {
	return func(l *Log) {
		if maxBatch > 0 {
			l.groupBatch = uint64(maxBatch)
		}
		if maxWait > 0 {
			l.groupWait = maxWait
		}
	}
}

// segment is one on-disk log file.
type segment struct {
	name  string // file name within dir
	first uint64 // sequence of its first record
	count uint64 // records it holds (maintained for the active segment)
}

// Log is a segmented write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	dir        string
	clock      clockwork.Clock
	segLimit   int64
	syncEach   bool
	groupBatch uint64
	groupWait  time.Duration

	mu       sync.Mutex
	segs     []segment
	file     *os.File // active (last) segment, append-only
	buf      []byte   // framed records not yet written to file
	fileSize int64    // bytes in file plus bytes buffered
	nextSeq  uint64
	snapSeq  uint64
	snapData []byte
	snapTime time.Time
	closed   bool
	failed   bool

	// Group-commit state: syncedSeq is the highest sequence covered by a
	// completed fsync; syncInFlight marks a leader mid-fsync (it drops mu
	// for the syscall); syncDone is broadcast whenever either changes, and
	// also gates rotation, snapshots and Close against an in-flight fsync.
	// arriving counts appenders that have entered Append but not yet
	// written their record — the leader's join window watches it without
	// the mutex, so those appenders can actually take the lock and land in
	// the current batch.
	syncedSeq    uint64
	syncInFlight bool
	syncDone     *sync.Cond
	arriving     atomic.Int64
	lastBatch    uint64 // records acked by the most recent group fsync

	inj     *faults.Injector
	injSite string
	tornRng *rand.Rand
}

// Open opens (or creates) the log in dir, truncating any torn tail left by
// a crash. The returned log is positioned to append after the last intact
// record.
func Open(dir string, opts ...Option) (*Log, error) {
	l := &Log{
		dir:        dir,
		clock:      clockwork.Real(),
		segLimit:   DefaultSegmentLimit,
		syncEach:   true,
		groupBatch: DefaultGroupBatch,
		groupWait:  DefaultGroupWait,
	}
	for _, o := range opts {
		o(l)
	}
	l.syncDone = sync.NewCond(&l.mu)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	if err := l.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := l.loadSegments(); err != nil {
		return nil, err
	}
	// Everything recovered from disk is as durable as it will ever be.
	l.syncedSeq = l.nextSeq - 1
	return l, nil
}

// loadSnapshot finds the newest intact snapshot file and caches it.
func (l *Log) loadSnapshot() error {
	names, err := l.listFiles(snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	// Newest first; fall back through corrupt/torn snapshot files (a crash
	// between staging and rename can leave none, never a half-renamed one,
	// but be defensive about external damage).
	for i := len(names) - 1; i >= 0; i-- {
		seq, ok := parseSeqName(names[i], snapPrefix, snapSuffix)
		if !ok {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(l.dir, names[i]))
		if err != nil {
			return fmt.Errorf("wal: reading snapshot %s: %w", names[i], err)
		}
		payload, _, perr := parseRecord(raw)
		if perr != nil || len(payload) < 8 {
			continue
		}
		l.snapSeq = seq
		l.snapTime = time.Unix(0, int64(binary.LittleEndian.Uint64(payload))).UTC()
		l.snapData = append([]byte(nil), payload[8:]...)
		return nil
	}
	return nil
}

// loadSegments scans segment files in order, truncates the torn tail of the
// final one, and opens it for appending.
func (l *Log) loadSegments() error {
	names, err := l.listFiles(segPrefix, segSuffix)
	if err != nil {
		return err
	}
	for _, name := range names {
		first, ok := parseSeqName(name, segPrefix, segSuffix)
		if !ok {
			continue
		}
		l.segs = append(l.segs, segment{name: name, first: first})
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })

	l.nextSeq = l.snapSeq + 1
	for i := range l.segs {
		last := i == len(l.segs)-1
		count, keep, err := l.scanSegment(&l.segs[i], last)
		if err != nil {
			return err
		}
		l.segs[i].count = count
		l.fileSize = keep
		if l.segs[i].first+count > l.nextSeq {
			l.nextSeq = l.segs[i].first + count
		}
	}
	if len(l.segs) == 0 {
		return l.startSegmentLocked()
	}
	active := filepath.Join(l.dir, l.segs[len(l.segs)-1].name)
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening active segment: %w", err)
	}
	l.file = f
	return nil
}

// scanSegment validates a segment's records. For the final segment a bad
// tail is truncated to the last intact record; anywhere else it is
// corruption. Returns the record count and the byte length kept.
func (l *Log) scanSegment(seg *segment, last bool) (count uint64, keep int64, err error) {
	path := filepath.Join(l.dir, seg.name)
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: reading segment %s: %w", seg.name, err)
	}
	off := 0
	for off < len(raw) {
		payload, n, perr := parseRecord(raw[off:])
		if perr != nil {
			if !last {
				return 0, 0, fmt.Errorf("%w: segment %s offset %d: %v", ErrCorrupt, seg.name, off, perr)
			}
			// Torn tail: drop everything from the first bad frame on.
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return 0, 0, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.name, terr)
			}
			return count, int64(off), nil
		}
		_ = payload
		off += n
		count++
	}
	return count, int64(off), nil
}

// parseRecord decodes one framed record from b, returning the payload and
// the total frame length consumed.
func parseRecord(b []byte) (payload []byte, n int, err error) {
	if len(b) < headerSize {
		return nil, 0, errors.New("short header")
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if length > maxRecordSize {
		return nil, 0, fmt.Errorf("implausible record length %d", length)
	}
	if len(b) < headerSize+int(length) {
		return nil, 0, errors.New("short payload")
	}
	payload = b[headerSize : headerSize+int(length)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, errors.New("crc mismatch")
	}
	return payload, headerSize + int(length), nil
}

// frameRecord encodes payload with the length+CRC header.
func frameRecord(payload []byte) []byte {
	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[headerSize:], payload)
	return frame
}

func (l *Log) listFiles(prefix, suffix string) ([]string, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", l.dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), prefix) && strings.HasSuffix(e.Name(), suffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// parseSeqName extracts the sequence number embedded in a file name.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	digits := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	var seq uint64
	if _, err := fmt.Sscanf(digits, "%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

func segName(first uint64) string { return fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix) }
func snapName(seq uint64) string  { return fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix) }

// SetFaultInjector arms chaos hooks: Append consults "<site>"+FaultSiteAppend,
// Sync "<site>"+FaultSiteSync and WriteSnapshot "<site>"+FaultSiteSnapshot.
func (l *Log) SetFaultInjector(inj *faults.Injector, site string) {
	l.mu.Lock()
	l.inj = inj
	l.injSite = site
	l.mu.Unlock()
}

// ArmTornWrites makes injected append failures leave a partial frame on
// disk: the crash happens mid-write, at a seed-deterministic offset into
// the record. Chaos only; without arming, injected append errors write
// nothing.
func (l *Log) ArmTornWrites(seed int64) {
	l.mu.Lock()
	l.tornRng = rand.New(rand.NewSource(seed))
	l.mu.Unlock()
}

// Append durably adds a record and returns its sequence number. The record
// is acknowledged only after it (and, with per-append sync, the fsync of
// the group-commit batch covering it) succeeded; any failure fails the
// whole log, which must then be reopened.
//
// Durable appends coalesce: the record is written under the lock, then the
// caller joins the group-commit protocol (awaitDurableLocked) — one leader
// fsyncs for every record written so far, so concurrent appenders share a
// single fsync instead of paying one each.
func (l *Log) Append(payload []byte) (uint64, error) {
	// The arriving count covers the span from "wants to append" to "record
	// framed in the file": a group-commit leader watches it (lock-free) to
	// hold its batch open while appenders are still en route to the lock.
	l.arriving.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	seq, err := l.appendLocked(payload)
	l.arriving.Add(-1)
	if err != nil {
		return 0, err
	}
	if l.syncEach {
		if err := l.awaitDurableLocked(seq); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// AppendBatch durably adds every payload as its own record under one
// lock acquisition and — with per-append sync — one group-commit
// acknowledgement covering the whole batch, so a caller with n records
// in hand pays one fsync instead of n. Records receive consecutive
// sequences; the first is returned. An empty batch is a no-op (0, nil).
//
// The batch is atomic in the fail-stop sense of the log, not
// transactionally: a failure mid-batch fails the whole log (it must be
// reopened), so no later append can interleave with a half-applied
// batch, and records already framed replay only if the crash-recovered
// prefix covers them — exactly the semantics of n sequential Appends
// that all happened to share a crash.
func (l *Log) AppendBatch(payloads [][]byte) (uint64, error) {
	if len(payloads) == 0 {
		return 0, nil
	}
	l.arriving.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	first := uint64(0)
	var last uint64
	for i, p := range payloads {
		seq, err := l.appendLocked(p)
		if err != nil {
			l.arriving.Add(-1)
			return 0, err
		}
		if i == 0 {
			first = seq
		}
		last = seq
	}
	l.arriving.Add(-1)
	if l.syncEach {
		if err := l.awaitDurableLocked(last); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// appendLocked frames and writes one record, returning its sequence.
// Caller holds s.mu and is accounted in l.arriving.
//
//lint:blockok group commit: records are framed under l.mu by contract; the coalesced fsync and its waiters are the WAL's durable-before-ack design
func (l *Log) appendLocked(payload []byte) (uint64, error) {
	if err := l.usableLocked(); err != nil {
		return 0, err
	}
	frame := frameRecord(payload)
	if err := l.inj.Inject(l.injSite + FaultSiteAppend); err != nil {
		// Simulated crash mid-write: push the buffered records out (they
		// reached the kernel before the crash point) and optionally tear
		// the frame — leave a partial prefix on disk, no record completed —
		// then die.
		if len(l.buf) > 0 {
			_, _ = l.file.Write(l.buf)
			l.buf = l.buf[:0]
		}
		if l.tornRng != nil {
			if torn := frame[:l.tornRng.Intn(len(frame))]; len(torn) > 0 {
				_, _ = l.file.Write(torn)
			}
		}
		l.failLocked()
		return 0, err
	}
	// Rotation closes the active file, so it must not race an in-flight
	// group-commit fsync. A synced log therefore rotates in the leader,
	// right after its fsync (when no sync can be in flight); only the
	// no-sync configuration — where no fsync is ever in flight — rotates
	// inline. An appender must never block on the sync condition here: it
	// would park inside Append while new leaders keep re-claiming the sync
	// slot, starving it (and holding l.arriving up) indefinitely.
	if l.fileSize >= l.segLimit && !l.syncEach {
		if err := l.rotateLocked(); err != nil {
			l.failLocked()
			return 0, err
		}
	}
	// Buffer the frame instead of writing it: the appender's critical
	// section is then pure memory, so concurrent appenders can frame
	// records while a group-commit leader is mid-fsync without stalling in
	// a write syscall behind the filesystem journal. The buffer reaches
	// the kernel in flushLocked — always before the fsync that would
	// acknowledge its records, so durability semantics are unchanged.
	l.buf = append(l.buf, frame...)
	l.fileSize += int64(len(frame))
	seq := l.nextSeq
	l.nextSeq++
	seg, _ := l.segLast()
	seg.count++
	return seq, nil
}

// flushLocked hands the buffered frames to the kernel. Buffered records
// carry no durability promise yet (every ack path flushes before its
// fsync), so a crash that loses the buffer only drops unacknowledged
// appends. A write failure fails the log like any torn append.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.file.Write(l.buf); err != nil {
		l.failLocked()
		return fmt.Errorf("wal: append: %w", err)
	}
	l.buf = l.buf[:0]
	return nil
}

// failLocked marks the log failed and wakes every group-commit waiter so
// they observe the failure instead of sleeping forever.
func (l *Log) failLocked() {
	l.failed = true
	l.syncDone.Broadcast()
}

// waitSyncIdleLocked blocks until no group-commit fsync is in flight.
//
//lint:blockok group commit: waiting out the in-flight fsync under l.mu (Cond.Wait releases it while parked) is the WAL's serialization point
func (l *Log) waitSyncIdleLocked() {
	for l.syncInFlight {
		l.syncDone.Wait()
	}
}

// awaitDurableLocked blocks until a completed fsync covers seq — the
// group-commit protocol. The first waiter that finds no fsync in flight
// becomes the leader: it (optionally, groupWait > 0) lingers for followers
// on the injected clock, picks a batch target of at most groupBatch
// records, releases the lock for the fsync syscall, and on return
// acknowledges the whole batch by advancing syncedSeq and broadcasting.
// Followers — and appenders that arrived while the fsync was in flight —
// wait on the condition and either find their record covered or take the
// leader role for the next batch. A sync failure fails the log; every
// waiter whose record is not covered returns the error, so nothing is
// acknowledged beyond what an fsync actually covered.
//
//lint:blockok group commit: the leader fsyncs (lock dropped at groupBatch > 1) and followers Cond.Wait under l.mu; durable-before-ack is the WAL's contract
func (l *Log) awaitDurableLocked(seq uint64) error {
	for l.syncedSeq < seq {
		if err := l.usableLocked(); err != nil {
			return err
		}
		if l.syncInFlight {
			l.syncDone.Wait()
			continue
		}
		// Leader. Linger for followers when the workload looks concurrent —
		// appenders already en route to the lock (l.arriving), or a
		// previous batch that coalesced more than one record. The linger
		// releases the lock and spins on the injected clock (yielding the
		// scheduler each turn) so followers can frame their records into
		// this batch; a runtime timer would be too coarse for a
		// tens-of-microseconds window. The spin cap bounds the linger even
		// on a fake clock that never advances, and a strictly sequential
		// appender (lastBatch <= 1, nobody arriving) skips it entirely.
		l.syncInFlight = true
		if l.groupBatch > 1 && l.groupWait > 0 &&
			(l.arriving.Load() > 0 || l.lastBatch > 1) &&
			l.nextSeq-1-l.syncedSeq < l.groupBatch {
			const lingerSpinCap = 1024
			deadline := l.clock.Now().Add(l.groupWait)
			l.mu.Unlock()
			for spins := 0; spins < lingerSpinCap; spins++ {
				runtime.Gosched()
				if !l.clock.Now().Before(deadline) {
					break
				}
			}
			l.mu.Lock()
			if err := l.usableLocked(); err != nil {
				l.syncInFlight = false
				l.syncDone.Broadcast()
				return err
			}
		}
		target := l.nextSeq - 1
		if max := l.syncedSeq + l.groupBatch; target > max {
			target = max
		}
		if err := l.flushLocked(); err != nil {
			l.syncInFlight = false
			l.syncDone.Broadcast()
			return err
		}
		if err := l.inj.Inject(l.injSite + FaultSiteSync); err != nil {
			l.syncInFlight = false
			l.failLocked()
			return err
		}
		// The fsync syscall runs with the mutex dropped so followers can
		// frame their records meanwhile — except at maxBatch 1, where the
		// lock is held to faithfully reproduce the historical serialized
		// one-fsync-per-append behavior the benchmarks baseline against.
		var err error
		if l.groupBatch > 1 {
			file := l.file
			l.mu.Unlock()
			err = file.Sync()
			l.mu.Lock()
		} else {
			err = l.file.Sync()
		}
		l.syncInFlight = false
		if err != nil {
			l.failLocked()
			return fmt.Errorf("wal: sync: %w", err)
		}
		if target > l.syncedSeq {
			l.lastBatch = target - l.syncedSeq
			l.syncedSeq = target
		}
		l.syncDone.Broadcast()
		// The synced log's rotation point: the leader just finished the
		// only possible in-flight fsync, so the active file can be sealed
		// without racing one. Segments overshoot segLimit by at most the
		// final batch.
		if l.fileSize >= l.segLimit {
			if err := l.rotateLocked(); err != nil {
				l.failLocked()
				return err
			}
		}
	}
	return nil
}

// Sync flushes the active segment to stable storage. A sync failure fails
// the log: after fsync reports an error the kernel may have dropped the
// dirty pages, so retrying would silently lose data.
//
//lint:blockok explicit durability point: Sync's whole purpose is to force the disk, and it must serialize against appends under l.mu
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.inj.Inject(l.injSite + FaultSiteSync); err != nil {
		l.failLocked()
		return err
	}
	target := l.nextSeq - 1
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.file.Sync(); err != nil {
		l.failLocked()
		return fmt.Errorf("wal: sync: %w", err)
	}
	if target > l.syncedSeq {
		l.syncedSeq = target
	}
	return nil
}

func (l *Log) usableLocked() error {
	if l.closed {
		return ErrClosed
	}
	if l.failed {
		return ErrFailed
	}
	return nil
}

// segLast returns the active segment descriptor.
func (l *Log) segLast() (*segment, bool) {
	if len(l.segs) == 0 {
		return nil, false
	}
	return &l.segs[len(l.segs)-1], true
}

// rotateLocked seals the active segment and starts a fresh one at nextSeq.
func (l *Log) rotateLocked() error {
	if l.file != nil {
		if err := l.flushLocked(); err != nil {
			return err
		}
		if err := l.file.Sync(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		if err := l.file.Close(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		l.file = nil
	}
	return l.startSegmentLocked()
}

func (l *Log) startSegmentLocked() error {
	name := segName(l.nextSeq)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	l.segs = append(l.segs, segment{name: name, first: l.nextSeq})
	l.file = f
	l.fileSize = 0
	return nil
}

// WriteSnapshot atomically records a point-in-time state covering every
// sequence appended so far, then compacts: the log rotates to a fresh
// segment and deletes the superseded ones. Recovery loads the snapshot and
// replays only the records after it.
//
//lint:blockok durable checkpoint: snapshot write, fsync and compaction happen under l.mu so no append interleaves with the rotation
func (l *Log) WriteSnapshot(data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	// Compaction rotates the active segment; wait out any in-flight
	// group-commit fsync first.
	l.waitSyncIdleLocked()
	if err := l.usableLocked(); err != nil {
		return err
	}
	if err := l.inj.Inject(l.injSite + FaultSiteSnapshot); err != nil {
		return err
	}
	seq := l.nextSeq - 1
	payload := make([]byte, 8+len(data))
	now := l.clock.Now()
	binary.LittleEndian.PutUint64(payload[:8], uint64(now.UnixNano()))
	copy(payload[8:], data)

	// Stage, fsync, rename: the snapshot either exists whole or not at all.
	tmp := filepath.Join(l.dir, snapName(seq)+".tmp")
	final := filepath.Join(l.dir, snapName(seq))
	if err := writeFileSync(tmp, frameRecord(payload)); err != nil {
		return fmt.Errorf("wal: staging snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: publishing snapshot: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("wal: publishing snapshot: %w", err)
	}

	prevSnap := l.snapSeq
	l.snapSeq = seq
	l.snapTime = now.UTC()
	l.snapData = append([]byte(nil), data...)

	// Compact: everything appended so far is covered by the snapshot, so
	// rotate and drop the old segments, then the superseded snapshot.
	// Deletion is oldest-first and best-effort — a crash mid-compaction
	// leaves extra files whose records replay as no-ops below snapSeq.
	// An empty active segment is already positioned at nextSeq — rotating
	// would mint a second segment with the same name and the compaction
	// below would unlink the live file out from under the append handle.
	if seg, ok := l.segLast(); ok && seg.count > 0 {
		if err := l.rotateLocked(); err != nil {
			l.failed = true
			return err
		}
	}
	for len(l.segs) > 1 {
		if err := os.Remove(filepath.Join(l.dir, l.segs[0].name)); err != nil {
			break
		}
		l.segs = l.segs[1:]
	}
	if prevSnap > 0 && prevSnap != seq {
		_ = os.Remove(filepath.Join(l.dir, snapName(prevSnap)))
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}

// Snapshot returns the most recent snapshot: its data, the sequence it
// covers, and when it was taken.
func (l *Log) Snapshot() (data []byte, seq uint64, taken time.Time, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snapSeq == 0 && l.snapData == nil {
		return nil, 0, time.Time{}, false
	}
	return append([]byte(nil), l.snapData...), l.snapSeq, l.snapTime, true
}

// Replay streams every record after the snapshot, in sequence order, to fn.
// A non-nil error from fn stops the replay and is returned.
func (l *Log) Replay(fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	// Replay reads the segment files, so a live log's buffered frames must
	// reach the kernel first. A failed log skips the flush: its buffer is
	// exactly the unacknowledged suffix a crash would have dropped.
	if l.file != nil && !l.closed && !l.failed {
		if err := l.flushLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	segs := append([]segment(nil), l.segs...)
	snapSeq := l.snapSeq
	dir := l.dir
	l.mu.Unlock()
	for _, seg := range segs {
		raw, err := os.ReadFile(filepath.Join(dir, seg.name))
		if err != nil {
			return fmt.Errorf("wal: replaying %s: %w", seg.name, err)
		}
		seq := seg.first
		off := 0
		for off < len(raw) {
			payload, n, perr := parseRecord(raw[off:])
			if perr != nil {
				// The tail was validated at Open; mid-replay damage is
				// external corruption.
				return fmt.Errorf("%w: segment %s offset %d: %v", ErrCorrupt, seg.name, off, perr)
			}
			if seq > snapSeq {
				if err := fn(seq, payload); err != nil {
					return err
				}
			}
			seq++
			off += n
		}
	}
	return nil
}

// NextSeq returns the sequence the next append will receive.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// SnapshotSeq returns the sequence covered by the latest snapshot (0 when
// none exists).
func (l *Log) SnapshotSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapSeq
}

// Segments reports how many segment files the log currently spans.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close seals the log. A failed log closes without syncing (there is
// nothing trustworthy left to flush).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	// Let any in-flight group-commit fsync finish before the file goes
	// away; its waiters then observe closed and fail cleanly.
	l.waitSyncIdleLocked()
	l.closed = true
	l.syncDone.Broadcast()
	if l.file == nil {
		return nil
	}
	if !l.failed {
		if err := l.flushLocked(); err != nil {
			_ = l.file.Close()
			return fmt.Errorf("wal: close: %w", err)
		}
		//lint:ignore sensorlint/deepblock close-time flush: the log is already marked closed, so no appender can contend for l.mu while the final fsync runs
		if err := l.file.Sync(); err != nil {
			_ = l.file.Close()
			return fmt.Errorf("wal: close: %w", err)
		}
	}
	if err := l.file.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	l.file = nil
	return nil
}
