package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/faults"
)

// collect replays the log into a slice of (seq, payload).
func collect(t *testing.T, l *Log) (seqs []uint64, payloads [][]byte) {
	t.Helper()
	err := l.Replay(func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs, payloads
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf("record-%d", i))
		want = append(want, p)
		seq, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	seqs, payloads := collect(t, re)
	if len(seqs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(seqs), len(want))
	}
	for i := range want {
		if seqs[i] != uint64(i+1) || !bytes.Equal(payloads[i], want[i]) {
			t.Fatalf("record %d = (%d, %q), want (%d, %q)", i, seqs[i], payloads[i], i+1, want[i])
		}
	}
	if re.NextSeq() != uint64(len(want)+1) {
		t.Fatalf("NextSeq = %d, want %d", re.NextSeq(), len(want)+1)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithSegmentLimit(64), WithSyncEveryAppend(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("segments = %d, want >= 3", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	seqs, _ := collect(t, re)
	if len(seqs) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(seqs))
	}
}

// TestTornTailTruncatedAtRandomOffsets simulates a crash mid-write by
// truncating the final segment at every possible byte offset within the
// last record's frame: recovery must always keep exactly the acked prefix.
func TestTornTailTruncatedAtRandomOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		dir := t.TempDir()
		l, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		n := 3 + rng.Intn(5)
		for i := 0; i < n; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("intact-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		seg := filepath.Join(dir, segName(1))
		info, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Cut somewhere inside the final record's frame.
		frameLen := int64(headerSize + len("intact-0"))
		cut := info.Size() - 1 - rng.Int63n(frameLen-1)
		if err := os.Truncate(seg, cut); err != nil {
			t.Fatal(err)
		}

		re, err := Open(dir)
		if err != nil {
			t.Fatalf("trial %d: reopen after tear: %v", trial, err)
		}
		seqs, _ := collect(t, re)
		if len(seqs) != n-1 {
			t.Fatalf("trial %d: %d records after tear at %d, want %d", trial, len(seqs), cut, n-1)
		}
		// The log must be appendable after truncation.
		if _, err := re.Append([]byte("after-recovery")); err != nil {
			t.Fatal(err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		re2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		seqs2, payloads := collect(t, re2)
		if len(seqs2) != n || !bytes.Equal(payloads[len(payloads)-1], []byte("after-recovery")) {
			t.Fatalf("trial %d: post-recovery append not replayed", trial)
		}
		if err := re2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCorruptionBeforeTailIsRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithSegmentLimit(32), WithSyncEveryAppend(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := l.Append([]byte("0123456789abcdefghij")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the FIRST segment: not a torn tail, corruption.
	seg := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+2] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over mid-log corruption = %v, want ErrCorrupt", err)
	}
}

func TestSnapshotCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	clock := clockwork.NewFake(time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC))
	l, err := Open(dir, WithClock(clock), WithSegmentLimit(64), WithSyncEveryAppend(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("pre-snap-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := l.Segments()
	if err := l.WriteSnapshot([]byte("state@12")); err != nil {
		t.Fatal(err)
	}
	if l.Segments() >= segsBefore {
		t.Fatalf("segments after compaction = %d, want < %d", l.Segments(), segsBefore)
	}
	if _, err := l.Append([]byte("post-snap")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	data, seq, taken, ok := re.Snapshot()
	if !ok || string(data) != "state@12" || seq != 12 {
		t.Fatalf("snapshot = (%q, %d, %v), want (state@12, 12, true)", data, seq, ok)
	}
	if !taken.Equal(time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)) {
		t.Fatalf("snapshot time = %v", taken)
	}
	seqs, payloads := collect(t, re)
	if len(seqs) != 1 || seqs[0] != 13 || string(payloads[0]) != "post-snap" {
		t.Fatalf("post-snapshot replay = %v %q", seqs, payloads)
	}
}

func TestSecondSnapshotReplacesFirst(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithSyncEveryAppend(false))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot([]byte("two")); err != nil {
		t.Fatal(err)
	}
	data, seq, _, ok := l.Snapshot()
	if !ok || string(data) != "two" || seq != 2 {
		t.Fatalf("snapshot = (%q, %d)", data, seq)
	}
	snaps, err := l.listFiles(snapPrefix, snapSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("snapshot files on disk = %v, want just the latest", snaps)
	}
}

func TestInjectedAppendFaultFailsLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("acked")); err != nil {
		t.Fatal(err)
	}
	inj := faults.New(7, clockwork.Real())
	inj.Set("log"+FaultSiteAppend, faults.Rule{ErrorRate: 1})
	l.SetFaultInjector(inj, "log")
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("append = %v, want ErrInjected", err)
	}
	// The log now behaves like a dead process.
	l.SetFaultInjector(nil, "")
	if _, err := l.Append([]byte("late")); !errors.Is(err, ErrFailed) {
		t.Fatalf("append after failure = %v, want ErrFailed", err)
	}
	_ = l.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	seqs, payloads := collect(t, re)
	if len(seqs) != 1 || string(payloads[0]) != "acked" {
		t.Fatalf("recovered %v %q, want only the acked record", seqs, payloads)
	}
}

func TestTornWriteLeavesPartialFrameRecoveryDropsIt(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		dir := t.TempDir()
		l, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append([]byte("before-crash")); err != nil {
			t.Fatal(err)
		}
		inj := faults.New(seed, clockwork.Real())
		inj.Set("log"+FaultSiteAppend, faults.Rule{ErrorRate: 1})
		l.SetFaultInjector(inj, "log")
		l.ArmTornWrites(seed)
		if _, err := l.Append([]byte("torn-mid-write")); err == nil {
			t.Fatal("torn append reported success")
		}
		_ = l.Close()

		re, err := Open(dir)
		if err != nil {
			t.Fatalf("seed %d: reopen over torn frame: %v", seed, err)
		}
		seqs, payloads := collect(t, re)
		if len(seqs) != 1 || string(payloads[0]) != "before-crash" {
			t.Fatalf("seed %d: recovered %v %q", seed, seqs, payloads)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInjectedSyncFaultFailsLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithSyncEveryAppend(false))
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(3, clockwork.Real())
	inj.Set("log"+FaultSiteSync, faults.Rule{ErrorRate: 1})
	l.SetFaultInjector(inj, "log")
	if _, err := l.Append([]byte("unsynced")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("sync = %v, want ErrInjected", err)
	}
	if _, err := l.Append([]byte("after")); !errors.Is(err, ErrFailed) {
		t.Fatalf("append after sync failure = %v, want ErrFailed", err)
	}
	_ = l.Close()
}

func TestInjectedSnapshotFaultLeavesLogUsable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	inj := faults.New(5, clockwork.Real())
	inj.Set("log"+FaultSiteSnapshot, faults.Rule{ErrorRate: 1})
	l.SetFaultInjector(inj, "log")
	if err := l.WriteSnapshot([]byte("doomed")); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("snapshot = %v, want ErrInjected", err)
	}
	// Unlike append/sync, a failed snapshot is recoverable: the log and
	// its segments are intact.
	l.SetFaultInjector(nil, "")
	if _, err := l.Append([]byte("still-alive")); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := l.Snapshot(); ok {
		t.Fatal("failed snapshot must not be visible")
	}
}

func TestClosedLogRefusesOps(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close = %v, want nil", err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed = %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync on closed = %v", err)
	}
	if err := l.WriteSnapshot(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("snapshot on closed = %v", err)
	}
}

func TestEmptyLogReplaysNothing(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	seqs, _ := collect(t, l)
	if len(seqs) != 0 {
		t.Fatalf("empty log replayed %v", seqs)
	}
	if l.NextSeq() != 1 {
		t.Fatalf("NextSeq = %d, want 1", l.NextSeq())
	}
}

// TestSnapshotOnEmptyActiveSegment pins a compaction hazard: a snapshot
// taken while the active segment holds no records (e.g. two checkpoints
// in a row, or a checkpoint as the very first operation) must not rotate
// into a segment with the same name and then unlink the live file out
// from under the append handle — records written afterwards would land
// in an orphaned inode and vanish on reopen.
func TestSnapshotOnEmptyActiveSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot an empty log, then again with still no appends in between.
	if err := l.WriteSnapshot([]byte("s0")); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot([]byte("s1")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	// And the mixed shape: append, snapshot (rotates), snapshot again
	// while the fresh segment is empty, then append.
	if err := l.WriteSnapshot([]byte("s2")); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot([]byte("s3")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	data, _, _, ok := re.Snapshot()
	if !ok || string(data) != "s3" {
		t.Fatalf("snapshot = %q, %v; want s3", data, ok)
	}
	_, payloads := collect(t, re)
	if len(payloads) != 1 || string(payloads[0]) != "tail" {
		t.Fatalf("replayed %q, want [tail]", payloads)
	}
}
