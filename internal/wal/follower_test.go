package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/faults"
)

// followerSeed returns the divergence-test seed: CHAOS_SEED when set,
// else 1, so runs are reproducible by exporting the printed seed.
func followerSeed(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", v, err)
		}
		return n
	}
	return 1
}

// shipAll replays primary from the follower's next expected sequence and
// applies everything to the follower in one batch per call to fn.
func shipAll(t *testing.T, primary, follower *Log) {
	t.Helper()
	from := follower.NextSeq()
	var seqs []uint64
	var payloads [][]byte
	err := primary.ReplayFrom(from, func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay from %d: %v", from, err)
	}
	if len(seqs) == 0 {
		return
	}
	if _, err := follower.AppendAt(seqs[0], payloads); err != nil {
		t.Fatalf("append at %d: %v", seqs[0], err)
	}
}

// segmentBytes returns each segment file's name and contents, flushing the
// log's buffer first so on-disk state is complete.
func segmentBytes(t *testing.T, l *Log) map[string][]byte {
	t.Helper()
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	entries, err := os.ReadDir(l.Dir())
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(l.Dir(), name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = raw
	}
	return out
}

func TestAppendAtAppliesSkipsDuplicatesAndRefusesGaps(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	batch := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	next, err := l.AppendAt(1, batch)
	if err != nil {
		t.Fatalf("AppendAt: %v", err)
	}
	if next != 4 {
		t.Fatalf("next = %d, want 4", next)
	}
	// Re-shipping the same batch (and an overlapping one) is a no-op for
	// the duplicate prefix.
	if next, err = l.AppendAt(1, batch); err != nil || next != 4 {
		t.Fatalf("duplicate AppendAt = (%d, %v), want (4, nil)", next, err)
	}
	if next, err = l.AppendAt(3, [][]byte{[]byte("c"), []byte("d")}); err != nil || next != 5 {
		t.Fatalf("overlap AppendAt = (%d, %v), want (5, nil)", next, err)
	}
	// A batch starting beyond the append position is a gap.
	if _, err := l.AppendAt(7, [][]byte{[]byte("x")}); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap AppendAt err = %v, want ErrSeqGap", err)
	}
	seqs, payloads := collect(t, l)
	want := []string{"a", "b", "c", "d"}
	if len(seqs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(seqs), len(want))
	}
	for i, p := range payloads {
		if string(p) != want[i] {
			t.Fatalf("record %d = %q, want %q", seqs[i], p, want[i])
		}
	}
}

func TestReplayFromStreamsSuffixAndReportsCompaction(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 6; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err = l.ReplayFrom(4, func(seq uint64, _ []byte) error {
		got = append(got, seq)
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayFrom: %v", err)
	}
	if len(got) != 3 || got[0] != 4 || got[2] != 6 {
		t.Fatalf("ReplayFrom(4) sequences = %v, want [4 5 6]", got)
	}

	if err := l.WriteSnapshot([]byte("state")); err != nil {
		t.Fatal(err)
	}
	if err := l.ReplayFrom(3, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReplayFrom below snapshot err = %v, want ErrCompacted", err)
	}
	// From just past the snapshot is fine (nothing to stream yet).
	if err := l.ReplayFrom(7, func(uint64, []byte) error { return nil }); err != nil {
		t.Fatalf("ReplayFrom(7): %v", err)
	}
}

func TestInstallSnapshotResyncsAFreshFollower(t *testing.T) {
	primary, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	for i := 0; i < 5; i++ {
		if _, err := primary.Append([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.WriteSnapshot([]byte("snapshot-at-5")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := primary.Append([]byte(fmt.Sprintf("new-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	followerDir := t.TempDir()
	follower, err := Open(followerDir)
	if err != nil {
		t.Fatal(err)
	}
	// The fresh follower is behind the compaction horizon.
	if err := primary.ReplayFrom(follower.NextSeq(), func(uint64, []byte) error { return nil }); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReplayFrom err = %v, want ErrCompacted", err)
	}
	data, seq, _, ok := primary.Snapshot()
	if !ok {
		t.Fatal("primary has no snapshot")
	}
	if err := follower.InstallSnapshot(seq, data); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	if follower.NextSeq() != seq+1 {
		t.Fatalf("follower NextSeq = %d, want %d", follower.NextSeq(), seq+1)
	}
	shipAll(t, primary, follower)
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: snapshot and suffix both survive.
	re, err := Open(followerDir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	reData, reSeq, _, ok := re.Snapshot()
	if !ok || reSeq != seq || string(reData) != "snapshot-at-5" {
		t.Fatalf("reopened snapshot = (%q, %d, %v), want (%q, %d, true)", reData, reSeq, ok, "snapshot-at-5", seq)
	}
	seqs, payloads := collect(t, re)
	if len(seqs) != 3 || seqs[0] != 6 || string(payloads[2]) != "new-2" {
		t.Fatalf("reopened replay = %v, want records 6..8", seqs)
	}
}

// TestFollowerDivergenceCrashMidBatchCatchUp is the seeded divergence
// test: the follower crashes mid-batch with a torn partial frame on disk,
// reopens (truncating the torn tail), catches up from the primary, and
// after further traffic the two journals are byte-identical segment file
// by segment file.
func TestFollowerDivergenceCrashMidBatchCatchUp(t *testing.T) {
	seedVal := followerSeed(t)
	iterations := 20
	if testing.Short() {
		iterations = 5
	}
	for it := 0; it < iterations; it++ {
		rng := rand.New(rand.NewSource(seedVal + int64(it)*1000003))
		primaryDir, followerDir := t.TempDir(), t.TempDir()
		opts := []Option{WithSyncEveryAppend(false), WithSegmentLimit(512)}
		primary, err := Open(primaryDir, opts...)
		if err != nil {
			t.Fatal(err)
		}
		follower, err := Open(followerDir, opts...)
		if err != nil {
			t.Fatal(err)
		}

		appendBatch := func() {
			n := 1 + rng.Intn(4)
			payloads := make([][]byte, n)
			for i := range payloads {
				p := make([]byte, 8+rng.Intn(48))
				rng.Read(p)
				payloads[i] = p
			}
			first, err := primary.AppendBatch(payloads)
			if err != nil {
				t.Fatalf("primary append (CHAOS_SEED=%d reproduces): %v", seedVal, err)
			}
			if _, err := follower.AppendAt(first, payloads); err != nil {
				t.Fatalf("follower apply (CHAOS_SEED=%d reproduces): %v", seedVal, err)
			}
		}

		pre := 3 + rng.Intn(10)
		for i := 0; i < pre; i++ {
			appendBatch()
		}

		// Crash the follower mid-batch: the injected append fault tears a
		// seeded-random partial frame onto disk and fails the log.
		inj := faults.New(seedVal, clockwork.Real())
		inj.Set(FaultSiteAppend, faults.Rule{ErrorRate: 1, Err: faults.ErrCrashed})
		follower.SetFaultInjector(inj, "")
		follower.ArmTornWrites(rng.Int63())
		crashPayloads := [][]byte{[]byte("doomed-1"), []byte("doomed-2")}
		crashFirst, err := primary.AppendBatch(crashPayloads)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := follower.AppendAt(crashFirst, crashPayloads); !errors.Is(err, faults.ErrCrashed) {
			t.Fatalf("follower crash apply err = %v, want ErrCrashed (CHAOS_SEED=%d reproduces)", err, seedVal)
		}
		_ = follower.Close()

		// Restart: Open truncates the torn tail, then the primary re-ships
		// from the follower's recovered position.
		follower, err = Open(followerDir, opts...)
		if err != nil {
			t.Fatalf("reopen follower (CHAOS_SEED=%d reproduces): %v", seedVal, err)
		}
		if follower.NextSeq() > crashFirst+uint64(len(crashPayloads)) {
			t.Fatalf("follower recovered past the crash batch: next %d (CHAOS_SEED=%d reproduces)", follower.NextSeq(), seedVal)
		}
		shipAll(t, primary, follower)

		post := 1 + rng.Intn(8)
		for i := 0; i < post; i++ {
			appendBatch()
		}

		pSegs := segmentBytes(t, primary)
		fSegs := segmentBytes(t, follower)
		if len(pSegs) != len(fSegs) {
			t.Fatalf("segment counts differ: primary %d, follower %d (CHAOS_SEED=%d reproduces)", len(pSegs), len(fSegs), seedVal)
		}
		for name, want := range pSegs {
			got, ok := fSegs[name]
			if !ok {
				t.Fatalf("follower missing segment %s (CHAOS_SEED=%d reproduces)", name, seedVal)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("segment %s diverged: %d vs %d bytes (CHAOS_SEED=%d reproduces)", name, len(got), len(want), seedVal)
			}
		}
		if err := primary.Close(); err != nil {
			t.Fatal(err)
		}
		if err := follower.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
