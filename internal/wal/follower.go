package wal

// Follower-apply: the replication layer (internal/repl) ships journaled
// batches from a primary's log to a backup's, sequence numbers and all.
// The backup is not an independent appender — it must reproduce the
// primary's exact record stream — so it applies shipped records with
// AppendAt (idempotent at explicit sequences), catches up after a restart
// with ReplayFrom on the primary side, and resynchronizes past compaction
// with InstallSnapshot. Because records are framed deterministically and
// segments rotate at deterministic byte thresholds, a caught-up follower's
// segment files are byte-identical to the primary's — the divergence tests
// assert exactly that.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Errors specific to follower apply and catch-up.
var (
	// ErrSeqGap reports an AppendAt whose first sequence lies beyond the
	// log's append position: applying it would leave a hole, so the
	// follower must catch up (ReplayFrom / InstallSnapshot) first.
	ErrSeqGap = errors.New("wal: sequence gap")
	// ErrCompacted reports a ReplayFrom position at or below the latest
	// snapshot: the records were compacted away, so the follower needs
	// the snapshot (InstallSnapshot) before the remaining records.
	ErrCompacted = errors.New("wal: records compacted away")
)

// AppendAt applies replicated records at explicit sequences: payloads[0]
// carries sequence firstSeq, and each further payload the next one. It is
// the follower half of log shipping, and it is idempotent — payloads whose
// sequence the log already holds are skipped byte-for-byte (the primary
// re-ships from a conservative position after reconnects), so applying the
// same batch twice is harmless. A batch starting beyond the log's append
// position is refused with ErrSeqGap; the caller must catch up first.
//
// Durability matches AppendBatch: with per-append sync the call returns
// only after one group-commit fsync covers the whole batch, so a follower
// acknowledging a shipped batch promises the same crash-survival as the
// primary that sent it. Returns the log's next expected sequence.
func (l *Log) AppendAt(firstSeq uint64, payloads [][]byte) (uint64, error) {
	l.arriving.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	if firstSeq > l.nextSeq {
		l.arriving.Add(-1)
		return 0, fmt.Errorf("%w: batch starts at %d, log expects %d", ErrSeqGap, firstSeq, l.nextSeq)
	}
	// Skip the prefix the log already holds.
	if skip := l.nextSeq - firstSeq; skip >= uint64(len(payloads)) {
		l.arriving.Add(-1)
		if err := l.usableLocked(); err != nil {
			return 0, err
		}
		return l.nextSeq, nil
	} else {
		payloads = payloads[skip:]
	}
	var last uint64
	for _, p := range payloads {
		seq, err := l.appendLocked(p)
		if err != nil {
			l.arriving.Add(-1)
			return 0, err
		}
		last = seq
	}
	l.arriving.Add(-1)
	if l.syncEach {
		if err := l.awaitDurableLocked(last); err != nil {
			return 0, err
		}
	}
	return l.nextSeq, nil
}

// ReplayFrom streams every record with sequence >= from, in order, to fn —
// the primary half of follower catch-up. A position at or below the latest
// snapshot returns ErrCompacted: those records no longer exist as log
// entries, so the caller must ship the snapshot (InstallSnapshot on the
// follower) and retry from snapshot sequence + 1. A non-nil error from fn
// stops the replay and is returned.
func (l *Log) ReplayFrom(from uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	if from <= l.snapSeq {
		snapSeq := l.snapSeq
		l.mu.Unlock()
		return fmt.Errorf("%w: position %d is covered by snapshot %d", ErrCompacted, from, snapSeq)
	}
	l.mu.Unlock()
	return l.Replay(func(seq uint64, payload []byte) error {
		if seq < from {
			return nil
		}
		return fn(seq, payload)
	})
}

// InstallSnapshot replaces the log's entire contents with a snapshot
// covering sequence seq, positioning the log to append at seq+1. It is the
// full-resync path: a follower whose log diverged from — or fell behind
// the compaction horizon of — its primary discards local history and
// restarts from the primary's snapshot.
//
// The local segments are deleted before the new snapshot is published, so
// a crash mid-install can only regress the log to an older (pre-install)
// state, never leave diverged records layered over the new snapshot; the
// follower simply resyncs again on restart.
//
//lint:blockok full resync: discarding segments and publishing the new snapshot must be atomic under l.mu; the fsyncs inside are the durability point
func (l *Log) InstallSnapshot(seq uint64, data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	// Segment files are about to be unlinked; wait out any in-flight
	// group-commit fsync against them.
	l.waitSyncIdleLocked()
	if err := l.usableLocked(); err != nil {
		return err
	}
	if l.file != nil {
		if err := l.file.Close(); err != nil {
			l.failLocked()
			return fmt.Errorf("wal: install snapshot: %w", err)
		}
		l.file = nil
	}
	for _, seg := range l.segs {
		if err := os.Remove(filepath.Join(l.dir, seg.name)); err != nil {
			l.failLocked()
			return fmt.Errorf("wal: install snapshot: %w", err)
		}
	}
	l.segs = nil
	l.buf = l.buf[:0]

	now := l.clock.Now()
	payload := make([]byte, 8+len(data))
	binary.LittleEndian.PutUint64(payload[:8], uint64(now.UnixNano()))
	copy(payload[8:], data)
	tmp := filepath.Join(l.dir, snapName(seq)+".tmp")
	final := filepath.Join(l.dir, snapName(seq))
	if err := writeFileSync(tmp, frameRecord(payload)); err != nil {
		l.failLocked()
		return fmt.Errorf("wal: staging snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		l.failLocked()
		return fmt.Errorf("wal: publishing snapshot: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		l.failLocked()
		return fmt.Errorf("wal: publishing snapshot: %w", err)
	}
	if l.snapSeq > 0 && l.snapSeq != seq {
		_ = os.Remove(filepath.Join(l.dir, snapName(l.snapSeq)))
	}
	l.snapSeq = seq
	l.snapTime = now.UTC()
	l.snapData = append([]byte(nil), data...)
	l.nextSeq = seq + 1
	l.syncedSeq = seq
	if err := l.startSegmentLocked(); err != nil {
		l.failLocked()
		return err
	}
	return nil
}
