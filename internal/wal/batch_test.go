package wal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestAppendBatchSequencesAndReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := l.AppendBatch(nil); err != nil || seq != 0 {
		t.Fatalf("empty batch = (%d, %v), want (0, nil)", seq, err)
	}
	if seq, err := l.Append([]byte("solo")); err != nil || seq != 1 {
		t.Fatalf("Append = (%d, %v)", seq, err)
	}
	batch := [][]byte{[]byte("b-0"), []byte("b-1"), []byte("b-2")}
	first, err := l.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if first != 2 {
		t.Fatalf("batch first seq = %d, want 2", first)
	}
	if next := l.NextSeq(); next != 5 {
		t.Fatalf("NextSeq = %d, want 5", next)
	}
	if seq, err := l.Append([]byte("after")); err != nil || seq != 5 {
		t.Fatalf("post-batch Append = (%d, %v), want (5, nil)", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	seqs, payloads := collect(t, re)
	want := [][]byte{[]byte("solo"), []byte("b-0"), []byte("b-1"), []byte("b-2"), []byte("after")}
	if len(seqs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(seqs), len(want))
	}
	for i := range want {
		if seqs[i] != uint64(i+1) || !bytes.Equal(payloads[i], want[i]) {
			t.Fatalf("record %d = (%d, %q), want (%d, %q)", i, seqs[i], payloads[i], i+1, want[i])
		}
	}
}

// TestAppendBatchConcurrentWithAppends races batched and single appends
// and checks that every acknowledged record replays exactly once with
// consecutive batch sequences.
func TestAppendBatchConcurrentWithAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		rounds  = 25
		batchN  = 5
	)
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		firsts = map[string]uint64{} // payload prefix -> first seq of its batch
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if w%2 == 0 {
					batch := make([][]byte, batchN)
					for i := range batch {
						batch[i] = []byte(fmt.Sprintf("w%d-r%d-%d", w, r, i))
					}
					first, err := l.AppendBatch(batch)
					if err != nil {
						t.Errorf("AppendBatch: %v", err)
						return
					}
					mu.Lock()
					firsts[fmt.Sprintf("w%d-r%d", w, r)] = first
					mu.Unlock()
				} else {
					if _, err := l.Append([]byte(fmt.Sprintf("w%d-r%d", w, r))); err != nil {
						t.Errorf("Append: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	bySeq := map[uint64]string{}
	seqs, payloads := collect(t, re)
	for i, s := range seqs {
		bySeq[s] = string(payloads[i])
	}
	wantRecords := writers / 2 * rounds * batchN // even writers
	wantRecords += (writers - writers/2) * rounds // odd writers
	if len(bySeq) != wantRecords {
		t.Fatalf("replayed %d records, want %d", len(bySeq), wantRecords)
	}
	// Batches must occupy consecutive sequences — no interleaving.
	for prefix, first := range firsts {
		for i := 0; i < batchN; i++ {
			want := fmt.Sprintf("%s-%d", prefix, i)
			if got := bySeq[first+uint64(i)]; got != want {
				t.Fatalf("batch %s: seq %d = %q, want %q", prefix, first+uint64(i), got, want)
			}
		}
	}
}

// TestAppendBatchLargerThanGroupBatch exercises the path where one batch
// exceeds the group-commit fsync cap and must be covered by multiple
// leader rounds before acknowledgement.
func TestAppendBatchLargerThanGroupBatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithGroupCommit(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]byte, 7)
	for i := range batch {
		batch[i] = []byte(fmt.Sprintf("big-%d", i))
	}
	first, err := l.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("first = %d, want 1", first)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	seqs, _ := collect(t, re)
	if len(seqs) != len(batch) {
		t.Fatalf("replayed %d, want %d", len(seqs), len(batch))
	}
}

// TestAppendBatchUnsynced checks the WithSyncEveryAppend(false) path: the
// batch is buffered without an fsync and still replays after a clean
// close.
func TestAppendBatchUnsynced(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithSyncEveryAppend(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch([][]byte{[]byte("x"), []byte("y")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	seqs, _ := collect(t, re)
	if len(seqs) != 2 {
		t.Fatalf("replayed %d, want 2", len(seqs))
	}
}
