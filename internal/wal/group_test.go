package wal

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/faults"
)

// appendConcurrently runs workers goroutines appending count records each,
// returning per-call errors and the set of acknowledged sequences.
func appendConcurrently(l *Log, workers, count int) (acked map[uint64]bool, errs []error) {
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	acked = make(map[uint64]bool)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < count; i++ {
				seq, err := l.Append([]byte("group-commit-record"))
				mu.Lock()
				if err != nil {
					errs = append(errs, err)
				} else {
					if acked[seq] {
						errs = append(errs, errors.New("duplicate sequence acked"))
					}
					acked[seq] = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return acked, errs
}

func TestGroupCommitConcurrentAppendsAllDurable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	acked, errs := appendConcurrently(l, 8, 50)
	for _, err := range errs {
		t.Fatalf("append: %v", err)
	}
	if len(acked) != 400 {
		t.Fatalf("acked %d records, want 400", len(acked))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	seqs, _ := collect(t, re)
	if len(seqs) != 400 {
		t.Fatalf("replayed %d records, want 400", len(seqs))
	}
	for _, seq := range seqs {
		if !acked[seq] {
			t.Fatalf("replayed sequence %d was never acked", seq)
		}
	}
}

// TestGroupCommitBatchBoundsAck pins the batching window: with maxBatch 1
// the log degenerates to one fsync per append (the benchmark baseline), and
// every ack still implies durability.
func TestGroupCommitBatchBoundsAck(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithGroupCommit(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	acked, errs := appendConcurrently(l, 4, 10)
	for _, err := range errs {
		t.Fatalf("append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	seqs, _ := collect(t, re)
	if len(seqs) != len(acked) {
		t.Fatalf("replayed %d records, want %d", len(seqs), len(acked))
	}
}

// TestGroupCommitLingerStillAcksEverything exercises the leader's
// groupWait delay path: sparse appenders pile onto a lingering leader and
// every append is still acknowledged durable.
func TestGroupCommitLingerStillAcksEverything(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithGroupCommit(64, 200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	acked, errs := appendConcurrently(l, 8, 20)
	for _, err := range errs {
		t.Fatalf("append: %v", err)
	}
	if len(acked) != 160 {
		t.Fatalf("acked %d records, want 160", len(acked))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	seqs, _ := collect(t, re)
	if len(seqs) != 160 {
		t.Fatalf("replayed %d records, want 160", len(seqs))
	}
}

// TestGroupCommitSyncFaultFailsWholeBatch injects an fsync failure while
// concurrent appenders are coalescing: no append may be acknowledged by a
// sync that never happened, and the log fails for everyone.
func TestGroupCommitSyncFaultFailsWholeBatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(11, clockwork.Real())
	inj.Set("log"+FaultSiteSync, faults.Rule{ErrorRate: 1})
	l.SetFaultInjector(inj, "log")

	acked, errs := appendConcurrently(l, 8, 5)
	if len(acked) != 0 {
		t.Fatalf("acked %d records past a failed fsync, want 0", len(acked))
	}
	if len(errs) != 40 {
		t.Fatalf("got %d errors, want 40", len(errs))
	}
	sawInjected := false
	for _, err := range errs {
		if errors.Is(err, faults.ErrInjected) {
			sawInjected = true
		} else if !errors.Is(err, ErrFailed) {
			t.Fatalf("append error = %v, want injected fault or ErrFailed", err)
		}
	}
	if !sawInjected {
		t.Fatal("no appender observed the injected sync fault")
	}
	_ = l.Close()

	// The crashed log reopens cleanly; unacked records may or may not have
	// reached disk, but replay must be a valid prefix (no corruption).
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Replay(func(uint64, []byte) error { return nil }); err != nil {
		t.Fatalf("replay after failed batch: %v", err)
	}
}

// TestGroupCommitSnapshotWaitsForInflightSync hammers WriteSnapshot against
// concurrent durable appends: compaction rotates the active file, so it must
// serialize with the leader's dropped-lock fsync instead of racing it.
func TestGroupCommitSnapshotWaitsForInflightSync(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithSegmentLimit(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = l.WriteSnapshot([]byte("state"))
			}
		}
	}()
	_, errs := appendConcurrently(l, 4, 25)
	close(stop)
	wg.Wait()
	for _, err := range errs {
		t.Fatalf("append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after snapshot/append race: %v", err)
	}
	_ = re.Close()
}
