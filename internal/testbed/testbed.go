// Package testbed assembles complete in-process SenSORCER deployments —
// the Fig. 2 configuration (lookup service, transaction manager, lease
// renewal service, event mailbox, provision monitor, cybernodes, SPOT
// temperature ESPs, a façade) — for the experiment harness, the examples
// and the benchmarks. One call stands up what the paper's lab ran as a
// room full of services.
package testbed

import (
	"fmt"
	"path/filepath"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/event"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/rio"
	"sensorcer/internal/sensor"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/space"
	"sensorcer/internal/spot"
	"sensorcer/internal/subscribe"
	"sensorcer/internal/txn"
	"sensorcer/internal/wal"
)

// Config shapes a deployment.
type Config struct {
	// Sensors is the number of simulated SPOT temperature sensors
	// (default 4 — the paper's Neem/Jade/Coral/Diamond).
	Sensors int
	// Cybernodes is the number of compute nodes (default 2, as in Fig. 2).
	Cybernodes int
	// Seed drives all simulation randomness (default 2009).
	Seed int64
	// Clock defaults to the real clock.
	Clock clockwork.Clock
	// SampleInterval enables background sampling on the ESPs; zero
	// means on-demand reads.
	SampleInterval time.Duration
	// Policy selects the provisioning policy (default least-loaded).
	Policy rio.SelectionPolicy
	// Subscriptions stands up the push-based subscription plane: a
	// subscribe.Hub fed by one single-eval Source per ESP, so reading
	// updates fan out to subscribers instead of being polled.
	Subscriptions bool
	// DurableDir, when non-empty, backs the exertion space and the lookup
	// service with write-ahead logs under this directory (subdirs "space"
	// and "registry") so the deployment recovers its state across
	// restarts. New panics if the journals cannot be opened or replayed —
	// a deployment that silently dropped its durability would defeat the
	// point.
	DurableDir string
}

// Deployment is a running SenSORCER network.
type Deployment struct {
	Clock     clockwork.Clock
	Bus       *discovery.Bus
	LUS       *registry.LookupService
	Mgr       *discovery.Manager
	Facade    *sensor.Facade
	Monitor   *rio.Monitor
	Factories *rio.FactoryRegistry
	Nodes     []*rio.Cybernode
	Devices   []*spot.Device
	ESPs      []*sensor.ESP
	TxnMgr    *txn.Manager
	Mailbox   *event.Mailbox
	Space     *space.Space
	Exerter   *sorcer.Exerter

	// Hub and Sources exist when Config.Subscriptions is set: the hub
	// fans reading updates out to subscribers, one source per ESP.
	Hub     *subscribe.Hub
	Sources []*subscribe.Source

	// SpaceLog and RegistryLog are the write-ahead logs behind the space
	// and the LUS when Config.DurableDir is set; nil otherwise.
	SpaceLog    *wal.Log
	RegistryLog *wal.Log

	joins     []*discovery.Join
	renewals  []*lease.RenewalManager
	busCancel func()
}

// SensorNames returns the deployed sensor service names in order.
func (d *Deployment) SensorNames() []string {
	out := make([]string, len(d.ESPs))
	for i, e := range d.ESPs {
		out[i] = e.SensorName()
	}
	return out
}

// New stands up a deployment per the config.
func New(cfg Config) *Deployment {
	if cfg.Sensors <= 0 {
		cfg.Sensors = 4
	}
	if cfg.Cybernodes <= 0 {
		cfg.Cybernodes = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 2009
	}
	if cfg.Clock == nil {
		cfg.Clock = clockwork.Real()
	}

	d := &Deployment{Clock: cfg.Clock, Bus: discovery.NewBus()}
	const lusName = "persimmon.cs.ttu.edu:4160"
	if cfg.DurableDir != "" {
		rlog, err := wal.Open(filepath.Join(cfg.DurableDir, "registry"), wal.WithClock(cfg.Clock))
		if err != nil {
			panic(fmt.Sprintf("testbed: opening registry journal: %v", err))
		}
		d.RegistryLog = rlog
		if d.LUS, err = registry.Recover(lusName, cfg.Clock, rlog); err != nil {
			panic(fmt.Sprintf("testbed: recovering registry: %v", err))
		}
	} else {
		d.LUS = registry.New(lusName, cfg.Clock)
	}
	d.busCancel = d.Bus.Announce(d.LUS)
	d.Mgr = discovery.NewManager(d.Bus)

	// Jini infrastructure peers of Fig. 2.
	d.TxnMgr = txn.NewManager(cfg.Clock, lease.Policy{Max: lease.DefaultMax})
	d.Mailbox = event.NewMailbox(cfg.Clock, lease.Policy{Max: lease.DefaultMax}, 0)
	if cfg.DurableDir != "" {
		slog, err := wal.Open(filepath.Join(cfg.DurableDir, "space"), wal.WithClock(cfg.Clock))
		if err != nil {
			panic(fmt.Sprintf("testbed: opening space journal: %v", err))
		}
		d.SpaceLog = slog
		if d.Space, err = space.Recover(cfg.Clock, lease.Policy{Max: lease.DefaultMax}, slog); err != nil {
			panic(fmt.Sprintf("testbed: recovering space: %v", err))
		}
	} else {
		d.Space = space.New(cfg.Clock, lease.Policy{Max: lease.DefaultMax})
	}
	d.Exerter = sorcer.NewExerter(sorcer.NewAccessor(d.Mgr))

	// Simulated SPOT fleet wrapped as ESPs.
	d.Devices = spot.NewFleet(cfg.Sensors, cfg.Clock, cfg.Seed)
	for _, dev := range d.Devices {
		name := dev.Name() + "-Sensor"
		opts := []sensor.ESPOption{sensor.WithClock(cfg.Clock)}
		if cfg.SampleInterval > 0 {
			opts = append(opts, sensor.WithSampleInterval(cfg.SampleInterval))
		}
		esp := sensor.NewESP(name, probe.NewSpotProbe(name, dev, "temperature", nil), opts...)
		esp.Start()
		d.ESPs = append(d.ESPs, esp)
		d.joins = append(d.joins, esp.Publish(cfg.Clock, d.Mgr))
	}

	// Push-based subscription plane: each ESP's reading-update events
	// mark a source dirty, which evaluates once and publishes to the hub.
	if cfg.Subscriptions {
		d.Hub = subscribe.NewHub(subscribe.WithHubClock(cfg.Clock))
		for _, esp := range d.ESPs {
			src := subscribe.NewSource(d.Hub, esp)
			src.Start()
			d.Sources = append(d.Sources, src)
			if _, err := esp.Events().Register(sensor.EventReadingUpdate, src.Listener(), time.Hour); err != nil {
				panic(fmt.Sprintf("testbed: registering subscription source: %v", err))
			}
		}
	}

	// Façade + Rio provisioning.
	d.Facade = sensor.NewFacade("SenSORCER Facade", cfg.Clock, d.Mgr)
	d.joins = append(d.joins, d.Facade.Publish())
	d.Factories = rio.NewFactoryRegistry()
	d.Monitor = rio.NewMonitor(cfg.Clock, cfg.Policy)
	nm := d.Facade.Network()
	nm.AttachProvisioner(sensor.NewProvisioner(d.Monitor, d.Factories, cfg.Clock, d.Mgr, nm.FindAccessor))
	for i := 0; i < cfg.Cybernodes; i++ {
		node := rio.NewCybernode(fmt.Sprintf("Cybernode-%d", i+1),
			rio.Capability{CPUs: 4, MemoryMB: 4096, Arch: "amd64"}, d.Factories)
		d.Nodes = append(d.Nodes, node)
		lse, err := d.Monitor.RegisterCybernode(node, time.Minute)
		if err == nil {
			// Keep node heartbeats alive for the deployment's life.
			mgr := lease.NewRenewalManager(cfg.Clock)
			l := lse
			mgr.Manage(&l)
			d.renewals = append(d.renewals, mgr)
		}
	}
	return d
}

// Close tears the deployment down in dependency order.
func (d *Deployment) Close() {
	for _, j := range d.joins {
		j.Terminate()
	}
	for _, s := range d.Sources {
		s.Stop()
	}
	if d.Hub != nil {
		d.Hub.Close()
	}
	for _, e := range d.ESPs {
		// Teardown is best-effort: a provider that fails to close cleanly
		// must not stop the rest of the deployment from coming down.
		_ = e.Close()
	}
	for _, m := range d.renewals {
		m.Stop()
	}
	d.Monitor.Close()
	d.Space.Close()
	if d.SpaceLog != nil {
		_ = d.SpaceLog.Close()
	}
	d.Mgr.Terminate()
	d.busCancel()
	d.LUS.Close()
	if d.RegistryLog != nil {
		_ = d.RegistryLog.Close()
	}
}
