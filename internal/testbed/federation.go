// Federation: the multi-process deployment mode. Where New assembles a
// whole SenSORCER network inside one process, StartFederation builds
// the sensorcerd binary and supervises real child processes — one
// lookup service (registrar + coordination-lease host) and any number
// of shard backup replicas serving replication endpoints — so system
// tests exercise the same srpc surfaces a production deployment
// crosses. The caller's process typically hosts the shard primaries
// and the coordinator replicas, which reach the children through
// remote.ReplicationClient and remote.CoordinationClient.
package testbed

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"sensorcer/internal/clockwork"
)

// BuildSensorcerd compiles cmd/sensorcerd into dir and returns the
// binary path. It must run from a working directory inside the module
// (tests always do).
func BuildSensorcerd(dir string) (string, error) {
	bin := filepath.Join(dir, "sensorcerd")
	out, err := exec.Command("go", "build", "-o", bin, "sensorcer/cmd/sensorcerd").CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("testbed: building sensorcerd: %v\n%s", err, out)
	}
	return bin, nil
}

// Proc is one supervised sensorcerd child process.
type Proc struct {
	cmd   *exec.Cmd
	clock clockwork.Clock
	ready chan struct{}
	once  sync.Once

	mu    sync.Mutex
	lines []string
	addr  string
}

// StartProc spawns bin with args and scans its stdout for the serving
// address every sensorcerd subcommand announces.
func StartProc(clock clockwork.Clock, bin string, args ...string) (*Proc, error) {
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	p := &Proc{cmd: cmd, clock: clock, ready: make(chan struct{})}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("testbed: starting %s %s: %w", bin, strings.Join(args, " "), err)
	}
	go p.scan(stdout)
	return p, nil
}

// scan records the child's stdout and resolves the serving address from
// the announcement line ("... serving on <addr> ...").
func (p *Proc) scan(r io.Reader) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		p.mu.Lock()
		p.lines = append(p.lines, line)
		if p.addr == "" {
			if i := strings.Index(line, " serving on "); i >= 0 {
				if fields := strings.Fields(line[i+len(" serving on "):]); len(fields) > 0 {
					p.addr = fields[0]
					p.once.Do(func() { close(p.ready) })
				}
			}
		}
		p.mu.Unlock()
	}
	// Stdout closed (the child exited): unblock waiters either way.
	p.once.Do(func() { close(p.ready) })
}

// Addr waits for the child to announce its serving address.
func (p *Proc) Addr(timeout time.Duration) (string, error) {
	t := p.clock.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-p.ready:
	case <-t.C():
		return "", fmt.Errorf("testbed: %s did not announce a serving address within %v\n%s",
			p.cmd.Path, timeout, p.Output())
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.addr == "" {
		return "", fmt.Errorf("testbed: %s exited before announcing a serving address\n%s",
			p.cmd.Path, strings.Join(p.lines, "\n"))
	}
	return p.addr, nil
}

// Output returns everything the child has printed so far.
func (p *Proc) Output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.lines, "\n")
}

// Stop terminates the child gracefully (SIGTERM, then kill after a
// grace period) and reaps it.
func (p *Proc) Stop() {
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		_, _ = p.cmd.Process.Wait()
		done <- struct{}{}
	}()
	t := p.clock.NewTimer(5 * time.Second)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C():
		_ = p.cmd.Process.Kill()
		<-done
	}
}

// Kill terminates the child without grace — the crash case.
func (p *Proc) Kill() {
	_ = p.cmd.Process.Kill()
	_, _ = p.cmd.Process.Wait()
}

// FederationConfig shapes a multi-process deployment.
type FederationConfig struct {
	// Bin is a prebuilt sensorcerd binary; empty builds one into Dir.
	Bin string
	// Dir is the scratch directory for the binary and the shard WALs
	// (empty = a fresh temp dir, removed on Close).
	Dir string
	// Shards names the shard backup replicas to host, one process each.
	Shards []string
	// Codec pins every child's srpc wire codec ("binary" or "json";
	// empty = the sensorcerd default, binary). Per-shard overrides in
	// ShardCodecs win, so tests can run mixed-codec federations where
	// some shards negotiate the binary protocol and others stay on the
	// legacy JSON lines.
	Codec string
	// ShardCodecs overrides Codec per shard name.
	ShardCodecs map[string]string
	// StartTimeout bounds each child's startup announcement (default 30s).
	StartTimeout time.Duration
	// Clock defaults to the real clock (children always run real time;
	// the clock only paces the supervisor's own waits).
	Clock clockwork.Clock
}

// Federation is a running multi-process deployment.
type Federation struct {
	Bin        string
	LUS        *Proc
	LUSAddr    string
	Shards     []*Proc
	ShardAddrs []string

	dir    string
	rmDir  bool
	closed bool
}

// StartFederation builds sensorcerd (unless cfg.Bin is set), starts one
// lookup-service process plus a backup process per cfg.Shards entry,
// and waits for each child to announce its serving address.
func StartFederation(cfg FederationConfig) (*Federation, error) {
	if cfg.Clock == nil {
		cfg.Clock = clockwork.Real()
	}
	if cfg.StartTimeout <= 0 {
		cfg.StartTimeout = 30 * time.Second
	}
	f := &Federation{Bin: cfg.Bin, dir: cfg.Dir}
	if f.dir == "" {
		d, err := os.MkdirTemp("", "sensorcer-federation-*")
		if err != nil {
			return nil, err
		}
		f.dir, f.rmDir = d, true
	}
	if f.Bin == "" {
		bin, err := BuildSensorcerd(f.dir)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Bin = bin
	}

	lusArgs := []string{"lus", "-listen", "127.0.0.1:0"}
	if cfg.Codec != "" {
		lusArgs = append(lusArgs, "-codec", cfg.Codec)
	}
	lus, err := StartProc(cfg.Clock, f.Bin, lusArgs...)
	if err != nil {
		f.Close()
		return nil, err
	}
	f.LUS = lus
	if f.LUSAddr, err = lus.Addr(cfg.StartTimeout); err != nil {
		f.Close()
		return nil, err
	}

	for _, name := range cfg.Shards {
		shardArgs := []string{"shard",
			"-name", name,
			"-listen", "127.0.0.1:0",
			"-dir", filepath.Join(f.dir, "shard-"+name)}
		codec := cfg.Codec
		if c, ok := cfg.ShardCodecs[name]; ok {
			codec = c
		}
		if codec != "" {
			shardArgs = append(shardArgs, "-codec", codec)
		}
		proc, err := StartProc(cfg.Clock, f.Bin, shardArgs...)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Shards = append(f.Shards, proc)
		addr, err := proc.Addr(cfg.StartTimeout)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.ShardAddrs = append(f.ShardAddrs, addr)
	}
	return f, nil
}

// Close stops every child process (shards first, then the lookup
// service) and removes the scratch directory if Close created it.
func (f *Federation) Close() {
	if f.closed {
		return
	}
	f.closed = true
	for _, p := range f.Shards {
		p.Stop()
	}
	if f.LUS != nil {
		f.LUS.Stop()
	}
	if f.rmDir {
		_ = os.RemoveAll(f.dir)
	}
}
