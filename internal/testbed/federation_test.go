package testbed

import (
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/remote"
	"sensorcer/internal/repl"
	"sensorcer/internal/space"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFederationMultiProcess is the multi-process system test: a
// lookup-service process hosting the registrar and the coordination
// leases, a shard-backup process hosting a replica, and the test
// process hosting the shard primaries plus two coordinator replicas
// that compete for the coordination lease over srpc. It exercises
// cross-process journal shipping (snapshot resync + tail), shard-map
// publication into the remote registry, leader-driven failover, and
// standby takeover with a dominating fencing token. Skipped under
// -short (it builds and spawns real processes).
func TestFederationMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process federation skipped in -short mode")
	}
	fed, err := StartFederation(FederationConfig{Shards: []string{"s0"}})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()

	clock := clockwork.Real()
	pol := lease.Policy{Max: time.Minute}

	// Cross-process journal shipping: the primary lives here, the
	// backup in a child process; the attach resyncs it with a snapshot
	// and chunked tail over srpc, then ships synchronously.
	follower, err := remote.NewReplicationClient(
		remote.ProxyDesc{Kind: remote.ReplicationKind, Locator: fed.ShardAddrs[0], Service: "s0"},
		2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	primary, err := repl.NewNode("s0-primary", clock, pol, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	sp, err := primary.Promote(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := sp.Write(space.NewEntry("reading", "seq", float64(i)), nil, time.Minute); err != nil {
			t.Fatalf("pre-attach write %d: %v", i, err)
		}
	}
	if _, err := primary.AttachBackup(2, follower, true); err != nil {
		t.Fatalf("cross-process resync: %v", err)
	}
	for i := 20; i < 40; i++ {
		if _, err := sp.Write(space.NewEntry("reading", "seq", float64(i)), nil, time.Minute); err != nil {
			t.Fatalf("replicated write %d: %v", i, err)
		}
	}
	if err := follower.Heartbeat(2); err != nil {
		t.Fatalf("heartbeat to child backup: %v", err)
	}

	// Coordination plane across processes: two coordinator replicas in
	// this process compete for the lease hosted by the child lookup
	// service, managing an in-process shard pair.
	ga, err := remote.NewCoordinationClient(fed.LUSAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ga.Close()
	gb, err := remote.NewCoordinationClient(fed.LUSAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer gb.Close()

	na, err := repl.NewNode("r0-a", clock, pol, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	nb, err := repl.NewNode("r0-b", clock, pol, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	router, err := repl.NewRouter(clock, []repl.ShardSpec{{Name: "r0", Primary: na, Backup: nb}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	cfg := repl.CoordinatorConfig{Term: 300 * time.Millisecond, Interval: 15 * time.Millisecond, Misses: 3}
	ca := repl.NewCoordinator("replica-a", clock, ga, router, cfg)
	cb := repl.NewCoordinator("replica-b", clock, gb, router, cfg)
	ca.Start()
	cb.Start()
	defer ca.Stop()
	defer cb.Stop()

	var leader, standby *repl.Coordinator
	waitUntil(t, "a coordinator to win the remote lease", func() bool {
		if _, ok := ca.Leading(); ok {
			leader, standby = ca, cb
			return true
		}
		if _, ok := cb.Leading(); ok {
			leader, standby = cb, ca
			return true
		}
		return false
	})
	firstTok, _ := leader.Leading()
	waitUntil(t, "the router to adopt the leader's token", func() bool {
		return router.Gen() == firstTok
	})

	// The shard map crosses into the child registry and back.
	rc, err := remote.NewRegistrarClient(fed.LUSAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	pub, _, err := repl.PublishShardMapVia(rc, "federation-space", router,
		remote.ProxyDesc{Kind: "shardmap", Locator: fed.LUSAddr, Service: "federation-space"},
		time.Minute)
	if err != nil {
		t.Fatalf("publishing shard map to remote registry: %v", err)
	}
	defer pub.Close()
	rc2, err := remote.NewRegistrarClient(fed.LUSAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rc2.Close()
	infos, err := repl.LookupShardMap(rc2, "federation-space")
	if err != nil {
		t.Fatalf("looking up shard map from remote registry: %v", err)
	}
	if len(infos) != 1 || infos[0].Shard != "r0" || infos[0].Gen != firstTok {
		t.Fatalf("remote shard map = %+v, want shard r0 at gen %d", infos, firstTok)
	}

	// The lease holder notices a dead primary and promotes the backup;
	// routed operations ride through the failover.
	na.Kill()
	waitUntil(t, "leader-driven failover to the backup", func() bool {
		return router.Shard("r0").Primary() == nb
	})
	if _, err := router.Write(space.NewEntry("job", "id", float64(1)), nil, time.Minute); err != nil {
		t.Fatalf("write after failover: %v", err)
	}

	// Kill the leader without abdication: its lease lapses in the child
	// process and the standby takes over with a dominating token.
	leader.Kill()
	waitUntil(t, "standby takeover with a dominating token", func() bool {
		tok, ok := standby.Leading()
		return ok && tok > firstTok
	})
	newTok, _ := standby.Leading()
	waitUntil(t, "the router to adopt the new token", func() bool {
		return router.Gen() == newTok
	})
}
