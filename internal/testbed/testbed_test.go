package testbed

import (
	"testing"
	"time"

	"sensorcer/internal/sensor"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/space"
)

func TestDefaultDeploymentShape(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	if len(d.ESPs) != 4 || len(d.Nodes) != 2 {
		t.Fatalf("sensors=%d nodes=%d", len(d.ESPs), len(d.Nodes))
	}
	names := d.SensorNames()
	want := []string{"Neem-Sensor", "Jade-Sensor", "Coral-Sensor", "Diamond-Sensor"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names = %v", names)
		}
	}
	// Everything visible through the façade.
	if got := len(d.Facade.SensorEntries()); got != 4 {
		t.Fatalf("SensorEntries = %d", got)
	}
	// All sensors readable.
	for _, n := range names {
		if _, err := d.Facade.Network().GetValue(n); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
}

func TestDeploymentPaperWorkflow(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	nm := d.Facade.Network()
	if _, err := nm.ComposeService("Composite-Service",
		[]string{"Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"}, "(a + b + c)/3"); err != nil {
		t.Fatal(err)
	}
	if err := nm.ProvisionComposite("New-Composite",
		[]string{"Composite-Service", "Coral-Sensor"}, "(a + b)/2", sensor.QoSSpec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := nm.GetValue("New-Composite"); err != nil {
		t.Fatal(err)
	}
}

func TestDeploymentExertions(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	sig := sorcer.Signature{ServiceType: sensor.AccessorType, Selector: sensor.SelGetValue, ProviderName: "Jade-Sensor"}
	task := sorcer.NewTask("read", sig, nil)
	res, err := d.Exerter.Exert(task, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Context().Float(sensor.PathValue); err != nil {
		t.Fatal(err)
	}
}

func TestDeploymentBackgroundSampling(t *testing.T) {
	d := New(Config{SampleInterval: time.Millisecond, Sensors: 2})
	defer d.Close()
	deadline := time.Now().Add(2 * time.Second)
	for d.ESPs[0].Store().Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d.ESPs[0].Store().Len() < 2 {
		t.Fatal("background sampling not running")
	}
}

func TestDeploymentScales(t *testing.T) {
	d := New(Config{Sensors: 32, Cybernodes: 4})
	defer d.Close()
	if got := len(d.Facade.SensorEntries()); got != 32 {
		t.Fatalf("SensorEntries = %d", got)
	}
}

// TestDurableDeploymentSurvivesRestart stands up a WAL-backed deployment,
// leaves state in the exertion space, tears the whole thing down, and
// brings up a second deployment on the same journal directory: the space
// contents must come back.
func TestDurableDeploymentSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	d := New(Config{Sensors: 1, Cybernodes: 1, DurableDir: dir})
	if d.SpaceLog == nil || d.RegistryLog == nil {
		t.Fatal("durable deployment has no journals")
	}
	if _, err := d.Space.Write(space.NewEntry("Reading", "sensor", "Neem", "value", 21.5), nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d2 := New(Config{Sensors: 1, Cybernodes: 1, DurableDir: dir})
	defer d2.Close()
	e, err := d2.Space.Read(space.NewEntry("Reading"), nil, 0)
	if err != nil {
		t.Fatalf("entry lost across deployment restart: %v", err)
	}
	if v := e.Field("value"); v != 21.5 {
		t.Fatalf("recovered value = %v", v)
	}
}
