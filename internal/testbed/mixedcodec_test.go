package testbed

import (
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/remote"
	"sensorcer/internal/repl"
	"sensorcer/internal/space"
)

// TestFederationMixedCodec runs a federation whose processes disagree
// about the wire codec — the rolling-upgrade shape: the lookup service
// is pinned to the legacy JSON protocol, shard s0's backup process
// likewise, while shard s1's backup speaks the binary frames. The
// binary-capable stubs in this process must negotiate per connection:
// down to JSON lines for the LUS and s0, binary frames for s1 — and a
// leader-driven failover must ride through the mixed deployment.
// Skipped under -short (it builds and spawns real processes).
func TestFederationMixedCodec(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process federation skipped in -short mode")
	}
	fed, err := StartFederation(FederationConfig{
		Shards:      []string{"s0", "s1"},
		Codec:       "json",
		ShardCodecs: map[string]string{"s1": "binary"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()

	clock := clockwork.Real()
	pol := lease.Policy{Max: time.Minute}

	// Journal shipping to both child backups: one connection negotiates
	// down to JSON, the other runs binary frames; the replication stubs
	// are identical.
	for i, shard := range []string{"s0", "s1"} {
		follower, err := remote.NewReplicationClient(
			remote.ProxyDesc{Kind: remote.ReplicationKind, Locator: fed.ShardAddrs[i], Service: shard},
			2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer follower.Close()
		primary, err := repl.NewNode(shard+"-primary", clock, pol, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer primary.Close()
		sp, err := primary.Promote(1)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 10; j++ {
			if _, err := sp.Write(space.NewEntry("reading", "seq", float64(j)), nil, time.Minute); err != nil {
				t.Fatalf("%s pre-attach write %d: %v", shard, j, err)
			}
		}
		if _, err := primary.AttachBackup(2, follower, true); err != nil {
			t.Fatalf("%s cross-process resync: %v", shard, err)
		}
		for j := 10; j < 20; j++ {
			if _, err := sp.Write(space.NewEntry("reading", "seq", float64(j)), nil, time.Minute); err != nil {
				t.Fatalf("%s replicated write %d: %v", shard, j, err)
			}
		}
		if err := follower.Heartbeat(2); err != nil {
			t.Fatalf("%s heartbeat: %v", shard, err)
		}
	}

	// Failover under mixed codecs: a coordinator holds its lease at the
	// JSON-only lookup service (its binary-capable client negotiated
	// down), supervises an in-process shard pair, and promotes the backup
	// when the primary dies.
	g, err := remote.NewCoordinationClient(fed.LUSAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	na, err := repl.NewNode("r0-a", clock, pol, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	nb, err := repl.NewNode("r0-b", clock, pol, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	router, err := repl.NewRouter(clock, []repl.ShardSpec{{Name: "r0", Primary: na, Backup: nb}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	co := repl.NewCoordinator("replica-a", clock, g, router,
		repl.CoordinatorConfig{Term: 300 * time.Millisecond, Interval: 15 * time.Millisecond, Misses: 3})
	co.Start()
	defer co.Stop()

	waitUntil(t, "the coordinator to win the JSON-hosted lease", func() bool {
		_, ok := co.Leading()
		return ok
	})
	na.Kill()
	waitUntil(t, "leader-driven failover to the backup", func() bool {
		return router.Shard("r0").Primary() == nb
	})
	if _, err := router.Write(space.NewEntry("job", "id", float64(1)), nil, time.Minute); err != nil {
		t.Fatalf("write after failover in mixed-codec federation: %v", err)
	}
}
