// Package attr implements Jini-style service attributes ("entries") and
// template matching. A lookup template matches a registered service when,
// for every entry in the template, the service carries an entry of the same
// type whose specified fields are all equal; unspecified (absent) fields act
// as wildcards. This is the exact matching rule the Jini lookup service
// applies, and sensorcer's registry, tuple space and discovery layers all
// reuse it.
package attr

import (
	"fmt"
	"sort"
	"strings"
)

// Value is an attribute field value. Values are restricted to a small set
// of comparable scalar kinds so matching is exact and serialization through
// the JSON RPC layer is loss-free: string, bool, int64, float64.
type Value any

// normalize maps convenience numeric kinds onto the canonical ones so that
// Entry fields set from untyped constants compare equal after a round trip
// through JSON (which decodes numbers as float64).
func normalize(v Value) Value {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case uint:
		return int64(x)
	case uint32:
		return int64(x)
	case uint64:
		return int64(x)
	case float32:
		return float64(x)
	default:
		return v
	}
}

// Entry is a single typed attribute, e.g. Location{building: "CP TTU"}.
type Entry struct {
	// Type names the entry kind, e.g. "Location", "Comment", "SensorType".
	Type string `json:"type"`
	// Fields maps field name to value. A field absent from a template
	// entry is a wildcard.
	Fields map[string]Value `json:"fields,omitempty"`
}

// New constructs an Entry of the given type from alternating key/value
// pairs. It panics on an odd number of arguments or a non-string key, which
// indicates a programming error at the call site.
func New(entryType string, kv ...any) Entry {
	if len(kv)%2 != 0 {
		panic("attr.New: odd number of key/value arguments")
	}
	e := Entry{Type: entryType, Fields: make(map[string]Value, len(kv)/2)}
	for i := 0; i < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			panic(fmt.Sprintf("attr.New: key %v is not a string", kv[i]))
		}
		e.Fields[k] = normalize(kv[i+1])
	}
	return e
}

// Get returns the named field and whether it is present.
func (e Entry) Get(field string) (Value, bool) {
	v, ok := e.Fields[field]
	return v, ok
}

// With returns a copy of e with the field set.
func (e Entry) With(field string, v Value) Entry {
	c := e.Clone()
	if c.Fields == nil {
		c.Fields = make(map[string]Value, 1)
	}
	c.Fields[field] = normalize(v)
	return c
}

// Clone returns a deep copy of the entry.
func (e Entry) Clone() Entry {
	c := Entry{Type: e.Type}
	if e.Fields != nil {
		c.Fields = make(map[string]Value, len(e.Fields))
		for k, v := range e.Fields {
			c.Fields[k] = v
		}
	}
	return c
}

// Matches reports whether candidate satisfies template entry e: the types
// are equal and every field present in e equals the corresponding candidate
// field. Numeric fields compare after normalization, so int and int64
// template values match.
func (e Entry) Matches(candidate Entry) bool {
	if e.Type != candidate.Type {
		return false
	}
	for k, want := range e.Fields {
		got, ok := candidate.Fields[k]
		if !ok || normalize(got) != normalize(want) {
			return false
		}
	}
	return true
}

// Equal reports whether two entries have identical type and fields.
func (e Entry) Equal(o Entry) bool {
	if e.Type != o.Type || len(e.Fields) != len(o.Fields) {
		return false
	}
	return e.Matches(o)
}

// String renders the entry as Type{k=v, ...} with sorted keys, matching the
// flavor of the attribute panel in the paper's Fig. 2.
func (e Entry) String() string {
	keys := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(e.Type)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%v", k, e.Fields[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Set is an unordered collection of entries attached to a service.
type Set []Entry

// CloneSet deep-copies a set.
func CloneSet(s Set) Set {
	if s == nil {
		return nil
	}
	c := make(Set, len(s))
	for i, e := range s {
		c[i] = e.Clone()
	}
	return c
}

// MatchesTemplate reports whether the set satisfies every entry of the
// template: each template entry must be matched by at least one set entry.
// An empty or nil template matches everything.
func (s Set) MatchesTemplate(template Set) bool {
	for _, te := range template {
		matched := false
		for _, se := range s {
			if te.Matches(se) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// Find returns the first entry of the given type, if any.
func (s Set) Find(entryType string) (Entry, bool) {
	for _, e := range s {
		if e.Type == entryType {
			return e, true
		}
	}
	return Entry{}, false
}

// Replace returns a set where every entry with e's type is replaced by e;
// if none exists, e is appended. This mirrors the Jini admin operation of
// modifying lookup attributes.
func (s Set) Replace(e Entry) Set {
	out := make(Set, 0, len(s)+1)
	replaced := false
	for _, cur := range s {
		if cur.Type == e.Type {
			if !replaced {
				out = append(out, e.Clone())
				replaced = true
			}
			continue
		}
		out = append(out, cur)
	}
	if !replaced {
		out = append(out, e.Clone())
	}
	return out
}

// String renders all entries sorted by type for stable output.
func (s Set) String() string {
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = e.String()
	}
	sort.Strings(parts)
	return "[" + strings.Join(parts, " ") + "]"
}

// Well-known entry types mirroring those visible in the paper's Fig. 2
// attribute panel (Name, Comment, Location, SorcerServiceType) plus the
// sensor-specific entries SenSORCER adds.
const (
	TypeName        = "Name"
	TypeComment     = "Comment"
	TypeLocation    = "Location"
	TypeServiceInfo = "ServiceInfo"
	TypeSensorType  = "SensorType"
	TypeServiceType = "SorcerServiceType"
)

// Name builds the standard Name entry.
func Name(name string) Entry { return New(TypeName, "name", name) }

// Comment builds the standard Comment entry ("Comment.comment" in Fig. 2).
func Comment(comment string) Entry { return New(TypeComment, "comment", comment) }

// Location builds the standard Location entry; Fig. 2 shows
// Location{building="CP TTU", floor="3", room="310"}.
func Location(building, floor, room string) Entry {
	return New(TypeLocation, "building", building, "floor", floor, "room", room)
}

// ServiceInfo describes the provider implementation.
func ServiceInfo(manufacturer, model, version string) Entry {
	return New(TypeServiceInfo, "manufacturer", manufacturer, "model", model, "version", version)
}

// SensorType labels a sensor provider with its measurement kind and unit,
// e.g. ("temperature", "celsius").
func SensorType(kind, unit string) Entry {
	return New(TypeSensorType, "kind", kind, "unit", unit)
}

// ServiceType mirrors the SorcerServiceType entry from Fig. 2: the provider
// category (ELEMENTARY, COMPOSITE, FACADE, ...) used by the browser.
func ServiceType(category string) Entry {
	return New(TypeServiceType, "category", category)
}

// NameOf extracts the Name entry value from a set, or "" when absent.
func NameOf(s Set) string {
	e, ok := s.Find(TypeName)
	if !ok {
		return ""
	}
	v, _ := e.Get("name")
	name, _ := v.(string)
	return name
}
