package attr

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestNewAndGet(t *testing.T) {
	e := New("Location", "building", "CP TTU", "floor", "3", "room", "310")
	if e.Type != "Location" {
		t.Fatalf("Type = %q", e.Type)
	}
	v, ok := e.Get("building")
	if !ok || v != "CP TTU" {
		t.Fatalf("Get(building) = %v, %v", v, ok)
	}
	if _, ok := e.Get("missing"); ok {
		t.Fatal("Get(missing) reported present")
	}
}

func TestNewPanicsOnOddArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on odd kv args")
		}
	}()
	New("X", "k")
}

func TestNewPanicsOnNonStringKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-string key")
		}
	}()
	New("X", 42, "v")
}

func TestEntryMatchesWildcardFields(t *testing.T) {
	candidate := Location("CP TTU", "3", "310")
	tmpl := New(TypeLocation, "building", "CP TTU") // floor, room wildcarded
	if !tmpl.Matches(candidate) {
		t.Fatal("partial template should match")
	}
	tmplWrong := New(TypeLocation, "building", "Other")
	if tmplWrong.Matches(candidate) {
		t.Fatal("mismatching field should not match")
	}
	tmplType := New("Comment", "building", "CP TTU")
	if tmplType.Matches(candidate) {
		t.Fatal("different type should not match")
	}
}

func TestEmptyTemplateEntryMatchesSameType(t *testing.T) {
	tmpl := Entry{Type: TypeSensorType}
	if !tmpl.Matches(SensorType("temperature", "celsius")) {
		t.Fatal("empty-field template of same type should match")
	}
}

func TestNumericNormalization(t *testing.T) {
	e := New("Q", "n", 3)
	tmplInt64 := New("Q", "n", int64(3))
	if !tmplInt64.Matches(e) {
		t.Fatal("int vs int64 should match")
	}
	f := New("Q", "x", float32(1.5))
	if !New("Q", "x", 1.5).Matches(f) {
		t.Fatal("float32 vs float64 should match")
	}
}

func TestEntryEqual(t *testing.T) {
	a := Location("B", "1", "2")
	b := Location("B", "1", "2")
	if !a.Equal(b) {
		t.Fatal("identical entries not Equal")
	}
	c := New(TypeLocation, "building", "B")
	if a.Equal(c) {
		t.Fatal("entries with different field counts reported Equal")
	}
}

func TestEntryWithAndClone(t *testing.T) {
	a := Name("Neem-Sensor")
	b := a.With("name", "Jade-Sensor")
	if NameOf(Set{a}) != "Neem-Sensor" {
		t.Fatal("With mutated the receiver")
	}
	if NameOf(Set{b}) != "Jade-Sensor" {
		t.Fatal("With did not set the field")
	}
	empty := Entry{Type: "T"}
	w := empty.With("k", "v")
	if v, ok := w.Get("k"); !ok || v != "v" {
		t.Fatal("With on nil-fields entry failed")
	}
}

func TestSetMatchesTemplate(t *testing.T) {
	s := Set{
		Name("Coral-Sensor"),
		SensorType("temperature", "celsius"),
		Location("CP TTU", "3", "310"),
	}
	cases := []struct {
		tmpl Set
		want bool
	}{
		{nil, true},
		{Set{}, true},
		{Set{Name("Coral-Sensor")}, true},
		{Set{New(TypeSensorType, "kind", "temperature")}, true},
		{Set{Name("Coral-Sensor"), New(TypeLocation, "floor", "3")}, true},
		{Set{Name("Other")}, false},
		{Set{New("Unknown")}, false},
		{Set{New(TypeSensorType, "kind", "humidity")}, false},
	}
	for i, c := range cases {
		if got := s.MatchesTemplate(c.tmpl); got != c.want {
			t.Errorf("case %d: MatchesTemplate(%v) = %v, want %v", i, c.tmpl, got, c.want)
		}
	}
}

func TestSetFindAndReplace(t *testing.T) {
	s := Set{Name("A"), Comment("old")}
	s2 := s.Replace(Comment("new"))
	e, ok := s2.Find(TypeComment)
	if !ok {
		t.Fatal("Comment not found after Replace")
	}
	if v, _ := e.Get("comment"); v != "new" {
		t.Fatalf("comment = %v", v)
	}
	// Replace appends when absent.
	s3 := s2.Replace(ServiceType("FACADE"))
	if _, ok := s3.Find(TypeServiceType); !ok {
		t.Fatal("Replace did not append new type")
	}
	// Original set untouched.
	if e, _ := s.Find(TypeComment); func() Value { v, _ := e.Get("comment"); return v }() != "old" {
		t.Fatal("Replace mutated original set")
	}
}

func TestReplaceCollapsesDuplicates(t *testing.T) {
	s := Set{Comment("a"), Comment("b")}
	s2 := s.Replace(Comment("c"))
	n := 0
	for _, e := range s2 {
		if e.Type == TypeComment {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("got %d Comment entries, want 1", n)
	}
}

func TestStringStable(t *testing.T) {
	e := New("Z", "b", 2, "a", 1)
	if got := e.String(); got != "Z{a=1, b=2}" {
		t.Fatalf("String = %q", got)
	}
}

func TestNameOfMissing(t *testing.T) {
	if NameOf(Set{Comment("x")}) != "" {
		t.Fatal("NameOf on nameless set should be empty")
	}
}

func TestJSONRoundTripMatching(t *testing.T) {
	// After a trip through JSON (the RPC layer), numeric fields decode as
	// float64; matching must still work thanks to normalization... for
	// float-valued fields. Integer fields should be written as int64 by
	// convention; this test pins the float behavior.
	s := Set{New("Q", "x", 1.5), Name("N")}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Set
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !back.MatchesTemplate(Set{New("Q", "x", 1.5)}) {
		t.Fatal("JSON round trip broke float matching")
	}
	if NameOf(back) != "N" {
		t.Fatal("JSON round trip broke string fields")
	}
}

func TestCloneSetIndependence(t *testing.T) {
	s := Set{Name("A")}
	c := CloneSet(s)
	c[0].Fields["name"] = "B"
	if NameOf(s) != "A" {
		t.Fatal("CloneSet shares field maps")
	}
	if CloneSet(nil) != nil {
		t.Fatal("CloneSet(nil) should be nil")
	}
}

// Property: an entry always matches itself, and matching is reflexive over
// generated field sets.
func TestPropertySelfMatch(t *testing.T) {
	f := func(typ string, keys []string, vals []int64) bool {
		e := Entry{Type: typ, Fields: map[string]Value{}}
		for i, k := range keys {
			if i < len(vals) {
				e.Fields[k] = vals[i]
			}
		}
		return e.Matches(e) && e.Equal(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a template with a strict subset of fields still matches.
func TestPropertySubsetTemplateMatches(t *testing.T) {
	f := func(vals map[string]int64, drop uint8) bool {
		full := Entry{Type: "T", Fields: map[string]Value{}}
		for k, v := range vals {
			full.Fields[k] = v
		}
		tmpl := full.Clone()
		// Drop up to `drop` fields from the template.
		n := int(drop % 4)
		for k := range tmpl.Fields {
			if n == 0 {
				break
			}
			delete(tmpl.Fields, k)
			n--
		}
		return tmpl.Matches(full)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
