// Package lint is sensorcer's from-scratch static-analysis framework: a
// dependency-free analyzer harness on go/parser + go/types that machine-
// checks the invariants the federation's resilience guarantees rest on —
// no wall-clock time in library code, no goroutine without an exit path,
// no mutex held across an RPC, fault-injection sites as unique
// test-covered constants, context discipline, and no silently discarded
// Cancel/Abort/Close errors. cmd/sensorlint is the CLI; `make lint` wires
// it into the build.
//
// A diagnostic can be suppressed with an explicit, justified escape hatch
// on the offending line or the line above it:
//
//	//lint:ignore sensorlint/<analyzer> <reason>
//
// The reason is mandatory; an ignore without one does not suppress.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run (per package) and RunProgram
// (once, over every loaded package — for whole-repo invariants like
// fault-site uniqueness) are both optional.
type Analyzer struct {
	// Name is the short identifier ("rawclock") used in diagnostics and
	// ignore directives.
	Name string
	// Doc is the one-line invariant description.
	Doc string
	// Run analyzes a single package.
	Run func(*Pass)
	// RunProgram analyzes all loaded packages together.
	RunProgram func(*ProgramPass)
}

// Diagnostic is one reported violation. Interprocedural analyzers attach
// the full evidence chain ("file:line: what", one hop per entry), printed
// by `sensorlint -why`.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Chain    []string
}

// String formats the diagnostic the way compilers do.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (sensorlint/%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Fset   *token.FileSet
	Module string
	Pkg    *Package

	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass carries a program-level analyzer's view of every package.
type ProgramPass struct {
	Fset   *token.FileSet
	Module string
	Pkgs   []*Package

	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportChain records a diagnostic with an evidence chain for -why.
func (p *ProgramPass) ReportChain(pos token.Pos, chain []string, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// Analyzers returns every sensorlint analyzer in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{RawClock, GoroLeak, LockRPC, FaultSite, CtxFlow, MustClose, EpochGuard, DeepBlock, LockOrder, NoAlloc}
}

// ByName resolves a comma-separated analyzer selection ("rawclock,ctxflow").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(strings.TrimPrefix(name, "sensorlint/"))
		found := false
		for _, a := range Analyzers() {
			if a.Name == name {
				out = append(out, a)
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Run expands patterns relative to the module rooted at dir, loads and
// type-checks every matched package (tests included), runs the analyzers,
// and returns the surviving diagnostics sorted by position. An error means
// the load itself failed (exit 2 territory), not that violations exist.
func Run(dir, module string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	l := NewLoader(dir, module)
	paths, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, p := range paths {
		loaded, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return Analyze(l, pkgs, analyzers), nil
}

// Analyze runs analyzers over already-loaded packages, applying ignore
// directives and sorting the result.
func Analyze(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.Run != nil {
			for _, pkg := range pkgs {
				pass := &Pass{Fset: l.Fset(), Module: l.Module, Pkg: pkg, analyzer: a, report: report}
				a.Run(pass)
			}
		}
		if a.RunProgram != nil {
			pp := &ProgramPass{Fset: l.Fset(), Module: l.Module, Pkgs: pkgs, analyzer: a, report: report}
			a.RunProgram(pp)
		}
	}
	diags = filterIgnored(l, pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreKey identifies one suppressed (file, line, analyzer) cell.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// filterIgnored drops diagnostics covered by a justified
// `//lint:ignore sensorlint/<name> reason` directive on the same line or
// the line directly above.
func filterIgnored(l *Loader, pkgs []*Package, diags []Diagnostic) []Diagnostic {
	ignored := make(map[ignoreKey]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "lint:ignore ")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						continue // a reason is mandatory
					}
					pos := l.Fset().Position(c.Pos())
					for _, name := range strings.Split(fields[0], ",") {
						name = strings.TrimPrefix(name, "sensorlint/")
						ignored[ignoreKey{pos.Filename, pos.Line, name}] = true
						ignored[ignoreKey{pos.Filename, pos.Line + 1, name}] = true
					}
				}
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !ignored[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			kept = append(kept, d)
		}
	}
	return kept
}

// --- shared analyzer helpers ---

// isInternalPath reports whether path has an "internal" segment — the
// library code the concurrency/clock invariants bind.
func isInternalPath(path string) bool {
	return strings.Contains("/"+path+"/", "/internal/")
}

// isClockworkPath reports the one package allowed to touch the real clock.
func isClockworkPath(path string) bool {
	return strings.HasSuffix(path, "/clockwork")
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeOf resolves the statically-known function or method a call
// invokes, or nil for calls through function values and type conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// pkgPathOf returns the defining package path of a function ("" for
// builtins and universe-scope objects).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isPkgSelector reports whether sel is a qualified reference pkg.Name
// into the package with the given import path.
func isPkgSelector(info *types.Info, sel *ast.SelectorExpr, pkgPath string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}
