package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// loadTestdata loads every package under the golden-testdata module.
func loadTestdata(t *testing.T) (*Loader, []*Package) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", "sensorcer"))
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, "sensorcer")
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, p := range paths {
		loaded, err := l.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, loaded...)
	}
	return l, pkgs
}

// dumpGraph serializes everything diagnostics depend on: node order,
// call sites with their resolved targets, leaf facts, and the summary
// witnesses (whose chains -why prints).
func dumpGraph(g *callGraph) string {
	var b strings.Builder
	for _, n := range g.nodes {
		fmt.Fprintf(&b, "node %d %s noalloc=%v blockok=%v\n", n.id, n.name, n.noalloc, n.blockok)
		for _, cs := range n.calls {
			fmt.Fprintf(&b, "  call %s %s rpc=%v fsync=%v park=%v go=%v defer=%v blessed=%v held=%d targets=",
				g.fset.Position(cs.pos), cs.name, cs.rpc, cs.fsync, cs.park, cs.goStmt, cs.deferred, cs.blessed, len(cs.held))
			for _, t := range cs.targets {
				fmt.Fprintf(&b, "%s,", t.name)
			}
			b.WriteString("\n")
		}
		for _, pf := range n.parks {
			fmt.Fprintf(&b, "  park %s %s\n", g.fset.Position(pf.pos), pf.desc)
		}
		for _, lf := range n.allocs {
			fmt.Fprintf(&b, "  alloc %s %s\n", g.fset.Position(lf.pos), lf.desc)
		}
		for _, a := range n.acquires {
			fmt.Fprintf(&b, "  acquire %s %s\n", g.fset.Position(a.pos), a.class.id)
		}
		for _, kind := range [...]string{"rpc", "fsync", "park", "alloc"} {
			if w := n.sum.witness(kind); w != nil {
				fmt.Fprintf(&b, "  sum %s %s | %s\n", kind, w.desc, strings.Join(g.chain(w, kind), " ; "))
			}
		}
		for _, id := range sortedWitnessKeys(n.sum.acquires) {
			fmt.Fprintf(&b, "  sum acquire %s %s\n", id, n.sum.acquires[id].desc)
		}
	}
	return b.String()
}

// TestCallGraphDeterministic builds the whole-program graph twice over
// the same loaded packages and requires byte-identical dumps: map
// iteration anywhere in construction, widening or summarization would
// flip diagnostic order or witness chains between runs.
func TestCallGraphDeterministic(t *testing.T) {
	l, pkgs := loadTestdata(t)
	a := dumpGraph(buildCallGraph(l.Fset(), pkgs))
	b := dumpGraph(buildCallGraph(l.Fset(), pkgs))
	if a != b {
		al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
		for i := range al {
			if i >= len(bl) || al[i] != bl[i] {
				t.Fatalf("graph dump diverged at line %d:\n  first:  %q\n  second: %q", i+1, al[i], bl[i])
			}
		}
		t.Fatalf("graph dumps differ in length: %d vs %d lines", len(al), len(bl))
	}
	if len(a) == 0 {
		t.Fatal("empty graph dump")
	}
}
