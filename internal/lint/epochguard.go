package lint

import (
	"go/ast"
	"strings"
)

// EpochGuard machine-checks the replication layer's fencing invariant:
// code that can make a mutation durable must first consult the epoch
// fence, so a superseded primary can never acknowledge a write.
//
// Two package-scoped rules, both straight-line intraprocedural (a guard
// call anywhere earlier in the same function body satisfies the rule;
// nested function literals are their own scopes):
//
//   - in internal/space, a function that calls journalLocked or
//     journalBatchLocked must call checkGuardLocked first — the guard is
//     how repl fences a stale primary out of the space's durable paths;
//   - in internal/repl, a function that calls a journal/WAL mutation
//     entry point (Append, AppendBatch, AppendAt, InstallSnapshot,
//     WriteSnapshot, ShipBatch, ShipSnapshot) must first call one of the
//     requireEpoch* checks that read the node's replication state under
//     its lock;
//   - in internal/repl, a function that commits a coordinator decision —
//     publishing a new shard configuration via publishLocked (epoch
//     bumps, shard-map publications and handoff flips all go through it)
//     — must first call one of the requireCoord* fencing-token checks,
//     so a deposed coordinator's stale decisions bounce statically as
//     well as dynamically.
//
// The guard/check implementations themselves are exempt, as are test
// files (tests exercise unfenced paths deliberately).
var EpochGuard = &Analyzer{
	Name: "epochguard",
	Doc:  "flag durable-mutation entry points that skip the epoch fence check",
	Run: func(pass *Pass) {
		path := pass.Pkg.Path
		var rules []epochguardRule
		switch {
		case strings.HasSuffix(path, "/space"):
			rules = []epochguardRule{{
				mutations: map[string]bool{"journalLocked": true, "journalBatchLocked": true},
				guardOK:   func(name string) bool { return name == "checkGuardLocked" },
				guardDesc: "checkGuardLocked",
			}}
		case strings.HasSuffix(path, "/repl"):
			rules = []epochguardRule{{
				mutations: map[string]bool{
					"Append": true, "AppendBatch": true, "AppendAt": true,
					"InstallSnapshot": true, "WriteSnapshot": true,
					"ShipBatch": true, "ShipSnapshot": true,
				},
				guardOK:   func(name string) bool { return strings.HasPrefix(name, "requireEpoch") },
				guardDesc: "a requireEpoch* check",
			}, {
				mutations: map[string]bool{"publishLocked": true},
				guardOK:   func(name string) bool { return strings.HasPrefix(name, "requireCoord") },
				guardDesc: "a requireCoord* fencing-token check",
			}}
		default:
			return
		}
		for _, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				fd, ok := n.(*ast.FuncDecl)
				if !ok {
					return true
				}
				name := fd.Name.Name
				for _, rule := range rules {
					if rule.guardOK(name) || rule.mutations[name] {
						// The fence itself, or a mutation primitive whose
						// callers carry the obligation.
						continue
					}
					epochguardScan(pass, fd.Body, rule.mutations, rule.guardOK, rule.guardDesc)
				}
				return true
			})
		}
	},
}

// epochguardRule pairs one set of fence-requiring mutation entry points
// with the guard calls that discharge them.
type epochguardRule struct {
	mutations map[string]bool
	guardOK   func(name string) bool
	guardDesc string
}

// calleeName extracts the bare called name from a call expression
// (method selector or plain identifier), or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// epochguardScan walks one function body in source order: a mutation
// call is flagged unless a guard call precedes it.
func epochguardScan(pass *Pass, body *ast.BlockStmt, mutations map[string]bool, guardOK func(string) bool, guardDesc string) {
	if body == nil {
		return
	}
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			epochguardScan(pass, v.Body, mutations, guardOK, guardDesc)
			return false // its own scope
		case *ast.CallExpr:
			name := calleeName(v)
			if guardOK(name) {
				guarded = true
			} else if mutations[name] && !guarded {
				pass.Reportf(v.Pos(),
					"durable mutation %s without a preceding epoch fence check; call %s first so a superseded primary cannot acknowledge this",
					name, guardDesc)
			}
		}
		return true
	})
}
