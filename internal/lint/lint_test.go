package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden harness: testdata/src/sensorcer is a miniature module with
// one scenario package per analyzer. Lines that must produce a diagnostic
// carry a `// want `+"`regex`"+` comment; every diagnostic must match a
// want and every want must be hit, so positives and negatives are checked
// in one pass.

// wantRe extracts the expectation regex from a want comment.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type wantEntry struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants scans every .go file under root for want comments, keyed
// by "file:line".
func collectWants(t *testing.T, root string) map[string]*wantEntry {
	t.Helper()
	wants := make(map[string]*wantEntry)
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", p, line, m[1], err)
			}
			wants[fmt.Sprintf("%s:%d", p, line)] = &wantEntry{re: re}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func TestGoldenScenarios(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "sensorcer"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, "sensorcer", []string{"./..."}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, root)
	if len(wants) == 0 {
		t.Fatal("no want comments found under testdata")
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		w, ok := wants[key]
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("%s: diagnostic %q does not match want %q", key, d.Message, w.re)
			continue
		}
		w.matched = true
	}
	for key, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic matching %q", key, w.re)
		}
	}
}

// TestRepositoryIsClean is the self-lint meta-test: every sensorlint
// invariant must hold over the entire repository, so a violation anywhere
// in the tree fails the ordinary test suite too, not just `make lint`.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	root, module, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, module, []string{"./..."}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("rawclock,sensorlint/ctxflow")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "rawclock" || as[1].Name != "ctxflow" {
		t.Fatalf("ByName = %v", as)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
}
