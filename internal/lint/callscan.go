package lint

// The intraprocedural half of the call-graph build: one source-order scan
// per function body collecting call sites (with the locks held at each),
// channel-park facts, allocation facts, and mutex acquisitions. The held
// tracking generalizes lockrpc's straight-line approximation to lock
// *identities* and replays deferred calls LIFO against the lock state at
// return, which is when they actually run.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// heldLock is one entry of the scanner's lock stack; pinned means a
// deferred unlock holds it to function end.
type heldLock struct {
	class  lockClass
	pinned bool
}

// deferEntry is one deferred statement, replayed in reverse at scan end.
type deferEntry struct {
	unlock *lockClass
	lock   *lockClass
	call   *ast.CallExpr
}

type posRange struct{ lo, hi token.Pos }

type bodyScanner struct {
	g *callGraph
	n *funcNode

	held     []heldLock
	deferred []deferEntry

	// skip marks channel operations already accounted for by an enclosing
	// select, and composite literals claimed by an enclosing &.
	skip map[ast.Node]bool
	// directLits marks literals that never materialize as escaping
	// closures: direct-called, deferred, go'd, or passed to a call-only
	// param of a statically-resolved callee.
	directLits map[*ast.FuncLit]bool
	// exempt holds cold-path ranges (error-position return results, panic
	// arguments) where allocation is acceptable by convention.
	exempt []posRange
	// callFuns marks expressions in call position within this body.
	callFuns map[ast.Expr]bool
}

// scanBody populates n's call sites, facts and acquisitions.
func (g *callGraph) scanBody(n *funcNode) {
	s := &bodyScanner{
		g:          g,
		n:          n,
		skip:       make(map[ast.Node]bool),
		directLits: make(map[*ast.FuncLit]bool),
		callFuns:   make(map[ast.Expr]bool),
	}
	ast.Inspect(n.body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			s.callFuns[unparen(call.Fun)] = true
		}
		return true
	})
	s.walk(n.body)
	s.replayDefers()
}

// walk dispatches one subtree through the scanner.
func (s *bodyScanner) walk(root ast.Node) {
	if root == nil {
		return
	}
	ast.Inspect(root, s.visit)
}

func (s *bodyScanner) visit(node ast.Node) bool {
	switch v := node.(type) {
	case *ast.FuncLit:
		// Its body is a separate node. Creating the value allocates a
		// closure unless the literal never escapes.
		if !s.callFuns[ast.Expr(v)] && !s.directLits[v] {
			s.alloc(v.Pos(), "function literal allocates a closure")
		}
		return false

	case *ast.DeferStmt:
		s.scanDefer(v)
		return false

	case *ast.GoStmt:
		s.scanGo(v)
		return false

	case *ast.SelectStmt:
		s.scanSelect(v)
		return true

	case *ast.SendStmt:
		if !s.skip[ast.Node(v)] {
			s.park(v.Arrow, "sends on a channel")
		}
		return true

	case *ast.UnaryExpr:
		if v.Op == token.ARROW {
			if !s.skip[ast.Node(v)] {
				s.park(v.OpPos, "receives from a channel")
			}
			return true
		}
		if v.Op == token.AND {
			if cl, ok := unparen(v.X).(*ast.CompositeLit); ok {
				s.skip[ast.Node(cl)] = true
				s.alloc(v.Pos(), "taking the address of a composite literal allocates")
			}
		}
		return true

	case *ast.RangeStmt:
		if tv, ok := s.n.info.Types[v.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				s.park(v.For, "ranges over a channel")
			}
		}
		return true

	case *ast.ReturnStmt:
		s.markColdReturn(v)
		return true

	case *ast.AssignStmt:
		for _, lhs := range v.Lhs {
			if idx, ok := unparen(lhs).(*ast.IndexExpr); ok {
				if tv, ok := s.n.info.Types[idx.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						s.alloc(lhs.Pos(), "map assignment may grow the map")
					}
				}
			}
		}
		return true

	case *ast.BinaryExpr:
		if v.Op == token.ADD {
			if tv, ok := s.n.info.Types[v]; ok && tv.Type != nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					if tv.Value == nil { // constant folding is free
						s.alloc(v.OpPos, "string concatenation allocates")
					}
				}
			}
		}
		return true

	case *ast.CompositeLit:
		if !s.skip[ast.Node(v)] {
			if tv, ok := s.n.info.Types[v]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					s.alloc(v.Pos(), "slice literal allocates")
				case *types.Map:
					s.alloc(v.Pos(), "map literal allocates")
				}
			}
		}
		return true

	case *ast.SelectorExpr:
		// A bound method value (x.M used as a value) allocates a closure.
		if !s.callFuns[ast.Expr(v)] {
			if sel := s.n.info.Selections[v]; sel != nil && sel.Kind() == types.MethodVal {
				s.alloc(v.Pos(), "method value allocates a closure")
			}
		}
		return true

	case *ast.CallExpr:
		s.classifyCall(v, false, false)
		return true
	}
	return true
}

// scanDefer handles a defer statement: deferred unlocks pin their lock to
// function end, deferred locks take effect at return, and other deferred
// calls are replayed at scan end against the lock state at return — their
// arguments, though, evaluate immediately.
func (s *bodyScanner) scanDefer(v *ast.DeferStmt) {
	if m, operand := syncLockMethodCG(s.n.info, v.Call); m != "" {
		class := s.lockClassOf(operand)
		switch m {
		case "Unlock", "RUnlock":
			s.pin(class)
			s.deferred = append(s.deferred, deferEntry{unlock: &class})
		case "Lock", "RLock":
			s.deferred = append(s.deferred, deferEntry{lock: &class})
		}
		return
	}
	if fl, ok := unparen(v.Call.Fun).(*ast.FuncLit); ok {
		s.directLits[fl] = true
	}
	if sel, ok := unparen(v.Call.Fun).(*ast.SelectorExpr); ok {
		s.walk(sel.X)
	}
	for _, a := range v.Call.Args {
		s.walk(a)
	}
	s.deferred = append(s.deferred, deferEntry{call: v.Call})
}

// scanGo handles a go statement: the goroutine runs on its own stack, so
// blocking and lock facts do not transfer, but the statement allocates.
func (s *bodyScanner) scanGo(v *ast.GoStmt) {
	s.alloc(v.Pos(), "go statement allocates")
	if fl, ok := unparen(v.Call.Fun).(*ast.FuncLit); ok {
		s.directLits[fl] = true
	}
	if sel, ok := unparen(v.Call.Fun).(*ast.SelectorExpr); ok {
		s.walk(sel.X)
	}
	for _, a := range v.Call.Args {
		s.walk(a)
	}
	s.classifyCall(v.Call, true, false)
}

// scanSelect marks the comm operations as handled and records one park
// fact when the select has no default (it waits for a ready case).
func (s *bodyScanner) scanSelect(v *ast.SelectStmt) {
	hasDefault := false
	for _, c := range v.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			s.skip[ast.Node(comm)] = true
		case *ast.ExprStmt:
			if u, ok := unparen(comm.X).(*ast.UnaryExpr); ok {
				s.skip[ast.Node(u)] = true
			}
		case *ast.AssignStmt:
			for _, r := range comm.Rhs {
				if u, ok := unparen(r).(*ast.UnaryExpr); ok {
					s.skip[ast.Node(u)] = true
				}
			}
		}
	}
	if !hasDefault {
		s.park(v.Select, "parks on a select with no default")
	}
}

// markColdReturn exempts the error-position result expression of a return
// from the allocation check: `return 0, evalErrf(...)` is the cold path of
// a hot function, paid only when the operation already failed.
func (s *bodyScanner) markColdReturn(v *ast.ReturnStmt) {
	sig := s.n.sig
	if sig == nil || sig.Results().Len() == 0 || len(v.Results) == 0 {
		return
	}
	if !isErrorType(sig.Results().At(sig.Results().Len() - 1).Type()) {
		return
	}
	if len(v.Results) != sig.Results().Len() {
		return // `return f()` forwarding a call's results
	}
	last := v.Results[len(v.Results)-1]
	if id, ok := unparen(last).(*ast.Ident); ok && id.Name == "nil" {
		return
	}
	s.exempt = append(s.exempt, posRange{last.Pos(), last.End()})
}

// replayDefers evaluates deferred calls in LIFO order against the lock
// state at function return: a deferred RPC after `defer mu.Unlock()` runs
// before the unlock and is therefore still under the lock; one deferred
// before it runs after the unlock and is not.
func (s *bodyScanner) replayDefers() {
	for i := len(s.deferred) - 1; i >= 0; i-- {
		e := s.deferred[i]
		switch {
		case e.unlock != nil:
			s.releaseAtReturn(*e.unlock)
		case e.lock != nil:
			s.held = append(s.held, heldLock{class: *e.lock})
		default:
			s.classifyCall(e.call, false, true)
		}
	}
}

// --- lock bookkeeping ---

func (s *bodyScanner) heldSnapshot() []lockClass {
	if len(s.held) == 0 {
		return nil
	}
	out := make([]lockClass, len(s.held))
	for i, h := range s.held {
		out[i] = h.class
	}
	return out
}

// release pops the topmost unpinned holding of class (topmost of anything
// as a fallback, mirroring lockrpc's depth clamp).
func (s *bodyScanner) release(class lockClass) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].class.id == class.id && !s.held[i].pinned {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
	for i := len(s.held) - 1; i >= 0; i-- {
		if !s.held[i].pinned {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

// releaseAtReturn pops any holding of class, pinned included (the deferred
// unlock is what un-pins it).
func (s *bodyScanner) releaseAtReturn(class lockClass) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].class.id == class.id {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
	if n := len(s.held); n > 0 {
		s.held = s.held[:n-1]
	}
}

func (s *bodyScanner) pin(class lockClass) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].class.id == class.id && !s.held[i].pinned {
			s.held[i].pinned = true
			return
		}
	}
}

// lockClassOf identifies the mutex behind a Lock/Unlock receiver
// expression: a struct field ("space.Space.mu"), a package-level var, an
// embedded mutex ("wal.Log.(embedded)"), or a function-local.
func (s *bodyScanner) lockClassOf(x ast.Expr) lockClass {
	info := s.n.info
	switch v := unparen(x).(type) {
	case *ast.SelectorExpr:
		if sel := info.Selections[v]; sel != nil && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return lockClass{
					id:     shortPath(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + "." + v.Sel.Name,
					global: true,
				}
			}
		}
	case *ast.Ident:
		if vr, ok := info.Uses[v].(*types.Var); ok {
			t := vr.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				if named.Obj().Pkg().Path() != "sync" {
					// s.Lock() through an embedded mutex: the class is the
					// embedding type.
					return lockClass{
						id:     shortPath(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + ".(embedded)",
						global: true,
					}
				}
				if vr.Pkg() != nil && vr.Parent() == vr.Pkg().Scope() {
					return lockClass{id: shortPath(vr.Pkg().Path()) + "." + vr.Name(), global: true}
				}
			}
		}
	}
	return lockClass{id: "local:" + types.ExprString(x)}
}

// syncLockMethodCG resolves package sync's locking methods, returning the
// method name and the mutex operand expression.
func syncLockMethodCG(info *types.Info, call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", nil
	}
	if fn := calleeOf(info, call); fn != nil && pkgPathOf(fn) == "sync" {
		return sel.Sel.Name, sel.X
	}
	return "", nil
}

// --- fact recording ---

func (s *bodyScanner) park(pos token.Pos, desc string) {
	s.n.parks = append(s.n.parks, leafFact{pos: pos, desc: desc, held: s.heldSnapshot()})
}

// alloc records an allocation fact unless an //lint:allocok directive or a
// cold-path range covers it.
func (s *bodyScanner) alloc(pos token.Pos, desc string) {
	if s.allocExempt(pos) {
		return
	}
	s.n.allocs = append(s.n.allocs, leafFact{pos: pos, desc: desc})
}

func (s *bodyScanner) allocExempt(pos token.Pos) bool {
	for _, r := range s.exempt {
		if pos >= r.lo && pos <= r.hi {
			return true
		}
	}
	p := s.g.fset.Position(pos)
	return s.g.allocokLines[fmt.Sprintf("%s:%d", p.Filename, p.Line)]
}

// --- call classification ---

// parkFuncs are stdlib calls that park the goroutine until another
// goroutine acts.
var parkFuncs = map[string]bool{
	"(*sync.WaitGroup).Wait": true,
	"(*sync.Cond).Wait":      true,
	"time.Sleep":             true,
}

// allowedExternal lists external callees known not to allocate; anything
// else outside the program is assumed to allocate for noalloc purposes.
func allowedExternal(fn *types.Func) bool {
	switch pkgPathOf(fn) {
	case "math", "math/bits", "sync", "sync/atomic", "unicode/utf8":
		return true
	}
	switch fn.FullName() {
	case "reflect.TypeOf", "sort.Search", "errors.Is":
		return true
	// time.Time / time.Duration value arithmetic: pure integer math on
	// the wall/monotonic fields, no allocation (unlike Format/String).
	case "(time.Time).UnixNano", "(time.Time).Unix", "(time.Time).Before",
		"(time.Time).After", "(time.Time).Sub", "(time.Time).Add",
		"(time.Time).Equal", "(time.Time).IsZero", "(time.Time).Nanosecond",
		"(time.Duration).Milliseconds", "(time.Duration).Nanoseconds",
		"(time.Duration).Seconds":
		return true
	}
	return strings.HasPrefix(fn.FullName(), "(reflect.Type).")
}

// classifyCall resolves one call expression into lock transitions, a call
// site with targets, or leaf facts.
func (s *bodyScanner) classifyCall(call *ast.CallExpr, goStmt, deferred bool) {
	info := s.n.info

	// Lock transitions first.
	if m, operand := syncLockMethodCG(info, call); m != "" {
		class := s.lockClassOf(operand)
		switch m {
		case "Lock", "RLock":
			if class.global {
				s.n.acquires = append(s.n.acquires, lockAcq{class: class, pos: call.Pos(), held: s.heldSnapshot()})
			}
			s.held = append(s.held, heldLock{class: class})
		case "Unlock", "RUnlock":
			if deferred {
				s.releaseAtReturn(class)
			} else {
				s.release(class)
			}
		}
		return
	}

	fun := unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				s.alloc(call.Pos(), "make allocates")
			case "new":
				s.alloc(call.Pos(), "new allocates")
			case "append":
				s.alloc(call.Pos(), "append may grow its backing array")
			case "panic":
				// Panicking is the cold path by definition.
				for _, a := range call.Args {
					s.exempt = append(s.exempt, posRange{a.Pos(), a.End()})
				}
			}
			return
		}
	}

	// Conversions.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		s.classifyConversion(call, tv.Type)
		return
	}

	site := &callSite{
		pos:      call.Pos(),
		held:     s.heldSnapshot(),
		goStmt:   goStmt,
		deferred: deferred,
	}
	p := s.g.fset.Position(call.Pos())
	site.allocok = s.g.allocokLines[fmt.Sprintf("%s:%d", p.Filename, p.Line)] || s.allocExempt(call.Pos())

	if fl, ok := fun.(*ast.FuncLit); ok {
		s.directLits[fl] = true
		if n := s.g.byKey[litKey(fl)]; n != nil {
			site.name = n.name
			site.targets = []*funcNode{n}
		}
		s.n.calls = append(s.n.calls, site)
		return
	}

	fn := calleeOf(info, call)
	if fn == nil {
		s.classifyIndirect(call, site)
		return
	}

	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
		s.classifyIface(call, site, fn)
		return
	}

	// Statically-resolved function or method.
	key := fn.FullName()
	site.name = displayName(fn)
	site.rpc = isRPCPath(pkgPathOf(fn))
	site.fsync = key == "(*os.File).Sync"
	site.park = parkFuncs[key]
	target := s.g.byKey[key]
	if target != nil {
		site.targets = []*funcNode{target}
		s.markNonEscapingLits(call, target, fn.Type().(*types.Signature))
		s.checkCallAllocs(call, fn.Type().(*types.Signature))
	} else if !site.rpc && !site.fsync && !site.park && !allowedExternal(fn) {
		s.alloc(call.Pos(), fmt.Sprintf("calls %s (external, assumed to allocate)", site.name))
	}
	s.n.calls = append(s.n.calls, site)
}

// classifyConversion records allocating conversions: boxing into an
// interface and string/byte-slice copies.
func (s *bodyScanner) classifyConversion(call *ast.CallExpr, dst types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src, ok := s.n.info.Types[call.Args[0]]
	if !ok {
		return
	}
	if types.IsInterface(dst.Underlying()) && src.Type != nil && !types.IsInterface(src.Type.Underlying()) {
		s.alloc(call.Pos(), "conversion to an interface may allocate")
		return
	}
	db, dok := dst.Underlying().(*types.Basic)
	ss, sok := src.Type.Underlying().(*types.Slice)
	if dok && db.Info()&types.IsString != 0 && sok {
		_ = ss
		s.alloc(call.Pos(), "byte-slice to string conversion allocates")
		return
	}
	if _, isSlice := dst.Underlying().(*types.Slice); isSlice {
		if sb, ok := src.Type.Underlying().(*types.Basic); ok && sb.Info()&types.IsString != 0 {
			s.alloc(call.Pos(), "string to byte-slice conversion allocates")
		}
	}
}

// classifyIface widens a dynamic dispatch to every in-program implementer.
func (s *bodyScanner) classifyIface(call *ast.CallExpr, site *callSite, fn *types.Func) {
	recv := fn.Type().(*types.Signature).Recv().Type()
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	ifaceName := "interface"
	if named, ok := recv.(*types.Named); ok {
		pkg := ""
		if named.Obj().Pkg() != nil {
			pkg = shortPath(named.Obj().Pkg().Path()) + "."
		}
		ifaceName = pkg + named.Obj().Name()
	}
	site.name = ifaceName + "." + fn.Name()
	site.blessed = s.g.blessedIface[fn.FullName()]
	site.targets = s.g.implementersOf(iface, fn)
	if len(site.targets) == 0 {
		// No in-program implementer: external interface (reflect.Type,
		// io.Writer, ...). Assume allocation unless allowlisted.
		if !allowedExternal(fn) {
			s.alloc(call.Pos(), fmt.Sprintf("calls %s (dynamic, no in-program implementer, assumed to allocate)", site.name))
		}
	}
	s.checkCallAllocs(call, fn.Type().(*types.Signature))
	s.n.calls = append(s.n.calls, site)
}

// classifyIndirect resolves a call through a function value: first the
// flow index (field/var/param/local assignments), then signature widening
// over every address-taken function.
func (s *bodyScanner) classifyIndirect(call *ast.CallExpr, site *callSite) {
	info := s.n.info
	fun := unparen(call.Fun)
	site.name = types.ExprString(fun)
	tv, ok := info.Types[fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return // conversion-like or bad expr; nothing to track
	}
	if loc := locOf(info, s.n.pkg, fun); loc != "" {
		if fs := s.g.flow[loc]; fs != nil && !fs.unknown && len(fs.nodes) > 0 {
			site.targets = sortNodes(fs.nodes)
			s.n.calls = append(s.n.calls, site)
			return
		}
	}
	site.targets = sortNodes(s.g.addrTaken[sigKey(sig)])
	if len(site.targets) == 0 {
		// A func value nothing in the program ever produced: assume the
		// worst for allocation, nothing for blocking (documented limit).
		s.alloc(call.Pos(), fmt.Sprintf("calls %s (unresolved function value, assumed to allocate)", site.name))
	}
	s.n.calls = append(s.n.calls, site)
}

// markNonEscapingLits suppresses the closure-allocation fact for literals
// passed to call-only params of a statically-resolved callee: the literal
// never escapes, so the compiler keeps it on the stack.
func (s *bodyScanner) markNonEscapingLits(call *ast.CallExpr, target *funcNode, sig *types.Signature) {
	for i, arg := range call.Args {
		fl, ok := unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len()-1 {
			pi = sig.Params().Len() - 1
		}
		if s.g.paramCallOnly(target, pi) {
			s.directLits[fl] = true
		}
	}
}

// checkCallAllocs records boxing of concrete arguments into interface
// params and the argument-slice allocation of variadic calls.
func (s *bodyScanner) checkCallAllocs(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		variadicPart := false
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
			variadicPart = true
		}
		if pi < 0 || pi >= params.Len() {
			continue
		}
		pt := params.At(pi).Type()
		if variadicPart && call.Ellipsis == token.NoPos {
			if st, ok := pt.(*types.Slice); ok {
				pt = st.Elem()
				if i == params.Len()-1 {
					s.alloc(call.Pos(), "variadic call allocates its argument slice")
				}
			}
		}
		at, ok := s.n.info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if at.IsNil() {
			continue
		}
		if types.IsInterface(pt.Underlying()) && !types.IsInterface(at.Type.Underlying()) {
			s.alloc(arg.Pos(), "argument boxed into an interface parameter")
		}
	}
}

// paramCallOnly reports whether target's i'th parameter is function-typed
// and only ever invoked within the body — never stored, returned or passed
// somewhere that escapes.
func (g *callGraph) paramCallOnly(target *funcNode, i int) bool {
	if target.sig == nil || target.body == nil || i < 0 || i >= target.sig.Params().Len() {
		return false
	}
	if target.callOnly == nil {
		target.callOnly = make(map[int]bool)
	} else if v, ok := target.callOnly[i]; ok {
		return v
	}
	pv := target.sig.Params().At(i)
	result := false
	if _, isFunc := pv.Type().(*types.Signature); isFunc {
		// The address-escape rule in recordFuncValue marks params of
		// address-taken functions unknown; treat that as escaping too.
		if fs := g.flow[fmt.Sprintf("l:%d", pv.Pos())]; fs == nil || !fs.unknown {
			callFuns := make(map[ast.Expr]bool)
			ast.Inspect(target.body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					callFuns[unparen(call.Fun)] = true
				}
				return true
			})
			result = true
			ast.Inspect(target.body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || target.info.Uses[id] != pv {
					return true
				}
				if !callFuns[ast.Expr(id)] {
					result = false
				}
				return true
			})
		}
	}
	target.callOnly[i] = result
	return result
}

func sortNodes(nodes []*funcNode) []*funcNode {
	if len(nodes) < 2 {
		return nodes
	}
	out := append([]*funcNode{}, nodes...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].id > out[j].id; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
