package lint

import (
	"go/ast"
	"strings"
)

// LockRPC flags calls that cross into the RPC layer (internal/srpc,
// internal/remote) while a sync.Mutex/RWMutex acquired in the same
// function is still held. An RPC under a lock couples local critical
// sections to remote peers: one slow or partitioned provider stalls every
// goroutine contending for the mutex — exactly the wedge a managed
// federation must not allow.
//
// The scan is a straight-line intraprocedural approximation: Lock/RLock
// raises the held depth, Unlock/RUnlock lowers it, a deferred unlock
// (write or read flavor — `defer mu.Unlock()` after an RLock pins just the
// same) pins the lock to function end, and nested function literals are
// scanned as their own scopes. Deferred *calls* run at return, not where
// they are written, so they are replayed in LIFO order against the depth
// at return: a deferred RPC registered after `defer mu.Unlock()` runs
// before the unlock and is flagged; one registered before it runs after
// the unlock and is not, and a deferred RPC in a function that explicitly
// released its lock is clean. Branchy flows can slip past the scan; it is
// a tripwire for the common shapes, not an alias analysis.
var LockRPC = &Analyzer{
	Name: "lockrpc",
	Doc:  "flag srpc/remote calls made while a mutex acquired in the same function is held",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.FuncDecl:
					lockrpcScan(pass, v.Body)
				case *ast.FuncLit:
					lockrpcScan(pass, v.Body)
				}
				return true
			})
		}
	},
}

// isRPCPath reports whether a package path is the RPC boundary.
func isRPCPath(path string) bool {
	return strings.HasSuffix(path, "/srpc") || strings.HasSuffix(path, "/remote")
}

// syncLockMethod returns "Lock"/"Unlock"/"RLock"/"RUnlock" when call is
// one of package sync's locking methods, else "".
func syncLockMethod(pass *Pass, call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return ""
	}
	if fn := calleeOf(pass.Pkg.Info, call); fn != nil && pkgPathOf(fn) == "sync" {
		return sel.Sel.Name
	}
	return ""
}

// lockrpcDefer is one deferred statement recorded during the scan: either
// a lock-state transition that takes effect at return, or a call replayed
// against the return-time depth.
type lockrpcDefer struct {
	method string // "Unlock"/"RUnlock"/"Lock"/"RLock", or "" for a plain call
	call   *ast.CallExpr
}

// lockrpcScan walks one function body in source order tracking lock depth,
// then replays deferred statements LIFO against the depth at return.
func lockrpcScan(pass *Pass, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	depth := 0
	var deferred []lockrpcDefer
	report := func(v *ast.CallExpr, suffix string) {
		fn := calleeOf(pass.Pkg.Info, v)
		if fn == nil {
			return
		}
		if path := pkgPathOf(fn); isRPCPath(path) {
			pass.Reportf(v.Pos(),
				"call to %s.%s while a sync lock acquired in this function is still held%s; release the lock before crossing the RPC boundary",
				path[strings.LastIndex(path, "/")+1:], fn.Name(), suffix)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // its own scope; scanned separately
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held to function end.
			// Other deferred calls do not run here: record them for the
			// LIFO replay (their arguments carry no lock ops or RPC
			// receivers in this codebase's shapes, so skipping the
			// subtree loses nothing the straight-line scan would keep).
			deferred = append(deferred, lockrpcDefer{method: syncLockMethod(pass, v.Call), call: v.Call})
			return false
		case *ast.CallExpr:
			switch syncLockMethod(pass, v) {
			case "Lock", "RLock":
				depth++
			case "Unlock", "RUnlock":
				if depth > 0 {
					depth--
				}
			default:
				if depth > 0 {
					report(v, "")
				}
			}
		}
		return true
	})
	// Replay: the last-registered defer runs first. Deferred unlocks
	// (pinned during the scan) release here, so a deferred RPC registered
	// before the deferred unlock runs after it — unlocked — while one
	// registered after it is still under the lock.
	for i := len(deferred) - 1; i >= 0; i-- {
		d := deferred[i]
		switch d.method {
		case "Unlock", "RUnlock":
			if depth > 0 {
				depth--
			}
		case "Lock", "RLock":
			depth++
		default:
			if depth > 0 {
				report(d.call, " at return")
			}
		}
	}
}
