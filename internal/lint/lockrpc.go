package lint

import (
	"go/ast"
	"strings"
)

// LockRPC flags calls that cross into the RPC layer (internal/srpc,
// internal/remote) while a sync.Mutex/RWMutex acquired in the same
// function is still held. An RPC under a lock couples local critical
// sections to remote peers: one slow or partitioned provider stalls every
// goroutine contending for the mutex — exactly the wedge a managed
// federation must not allow.
//
// The scan is a straight-line intraprocedural approximation: Lock/RLock
// raises the held depth, Unlock/RUnlock lowers it, a deferred unlock pins
// the lock to function end, and nested function literals are scanned as
// their own scopes. Branchy flows can slip past it; it is a tripwire for
// the common shapes, not an alias analysis.
var LockRPC = &Analyzer{
	Name: "lockrpc",
	Doc:  "flag srpc/remote calls made while a mutex acquired in the same function is held",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.FuncDecl:
					lockrpcScan(pass, v.Body)
				case *ast.FuncLit:
					lockrpcScan(pass, v.Body)
				}
				return true
			})
		}
	},
}

// isRPCPath reports whether a package path is the RPC boundary.
func isRPCPath(path string) bool {
	return strings.HasSuffix(path, "/srpc") || strings.HasSuffix(path, "/remote")
}

// syncLockMethod returns "Lock"/"Unlock"/"RLock"/"RUnlock" when call is
// one of package sync's locking methods, else "".
func syncLockMethod(pass *Pass, call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return ""
	}
	if fn := calleeOf(pass.Pkg.Info, call); fn != nil && pkgPathOf(fn) == "sync" {
		return sel.Sel.Name
	}
	return ""
}

// lockrpcScan walks one function body in source order tracking lock depth.
func lockrpcScan(pass *Pass, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	depth := 0
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // its own scope; scanned separately
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held to function end:
			// neither decrement nor descend. Other deferred calls are
			// inspected normally (a deferred RPC still runs under any
			// lock still held at return).
			if m := syncLockMethod(pass, v.Call); m == "Unlock" || m == "RUnlock" {
				return false
			}
		case *ast.CallExpr:
			switch syncLockMethod(pass, v) {
			case "Lock", "RLock":
				depth++
			case "Unlock", "RUnlock":
				if depth > 0 {
					depth--
				}
			default:
				if depth == 0 {
					break
				}
				fn := calleeOf(pass.Pkg.Info, v)
				if fn == nil {
					break
				}
				if path := pkgPathOf(fn); isRPCPath(path) {
					pass.Reportf(v.Pos(),
						"call to %s.%s while a sync lock acquired in this function is still held; release the lock before crossing the RPC boundary",
						path[strings.LastIndex(path, "/")+1:], fn.Name())
				}
			}
		}
		return true
	})
}
