package lint

// LockOrder builds the global lock-acquisition-order graph: an edge A→B
// means some goroutine acquires mutex class B (directly or through a
// callee, per the call-graph summaries) while already holding A. A cycle
// in that graph is a potential ABBA deadlock between the space, repl,
// router and lease layers — the kind of wedge no chaos seed reliably
// reproduces but a partition plus a lease expiry will.
//
// Lock identity is the (named type, field) class — "space.Space.mu",
// "repl.Node.mu" — so two instances of the same class are conflated;
// self-edges are skipped for exactly that reason (shard handoff legally
// locks two Spaces in sequence). An intended hierarchy that the checker
// cannot prove safe is blessed with an edge annotation anywhere in the
// tree:
//
//	//lint:lockorder allow space.Space.mu->lease.Table.mu <reason>
//
// `go` statements contribute no edges: the goroutine starts with an empty
// held set. Each cycle is reported once, at the first edge of the
// lexicographically smallest cycle rotation, with the acquisition trail in
// the -why chain.

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// lockEdge is one observed A-held→B-acquired pair with its provenance.
type lockEdge struct {
	from, to string
	pos      token.Pos
	owner    *funcNode // function whose scan produced the edge
	via      *funcNode // callee carrying the acquisition, nil when direct
}

var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "report cycles in the global lock-acquisition-order graph (potential deadlocks)",
	RunProgram: func(pp *ProgramPass) {
		g := programGraph(pp)
		edges := collectLockEdges(g)
		reportLockCycles(pp, g, edges)
	},
}

// collectLockEdges gathers every ordering edge: direct nested acquisitions
// and, at each call site, edges from the held set to every class the
// callee transitively acquires.
func collectLockEdges(g *callGraph) []lockEdge {
	var edges []lockEdge
	add := func(e lockEdge) {
		if e.from == e.to {
			return
		}
		if g.lockAllows[e.from+"->"+e.to] {
			return
		}
		edges = append(edges, e)
	}
	for _, n := range g.nodes {
		for _, a := range n.acquires {
			for _, h := range a.held {
				if h.global {
					add(lockEdge{from: h.id, to: a.class.id, pos: a.pos, owner: n})
				}
			}
		}
		for _, cs := range n.calls {
			if cs.goStmt || len(cs.held) == 0 {
				continue
			}
			for _, t := range cs.targets {
				for _, id := range sortedWitnessKeys(t.sum.acquires) {
					for _, h := range cs.held {
						if h.global {
							add(lockEdge{from: h.id, to: id, pos: cs.pos, owner: n, via: t})
						}
					}
				}
			}
		}
	}
	return edges
}

// reportLockCycles condenses the lock graph and reports each non-trivial
// SCC once as a cycle, deterministically.
func reportLockCycles(pp *ProgramPass, g *callGraph, edges []lockEdge) {
	adj := make(map[string]map[string]*lockEdge)
	var locks []string
	seenLock := make(map[string]bool)
	note := func(id string) {
		if !seenLock[id] {
			seenLock[id] = true
			locks = append(locks, id)
		}
	}
	for i := range edges {
		e := &edges[i]
		note(e.from)
		note(e.to)
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]*lockEdge)
		}
		if adj[e.from][e.to] == nil {
			adj[e.from][e.to] = e
		}
	}
	sort.Strings(locks)

	comp := lockSCCs(locks, adj)
	for _, scc := range comp {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		inSCC := make(map[string]bool, len(scc))
		for _, id := range scc {
			inSCC[id] = true
		}
		// Walk one concrete cycle starting at the smallest lock, always
		// taking the smallest in-SCC successor.
		cycle := []string{scc[0]}
		var trail []*lockEdge
		cur := scc[0]
		for len(cycle) <= len(scc)+1 {
			succ := ""
			for _, to := range sortedEdgeKeys(adj[cur]) {
				if inSCC[to] {
					succ = to
					break
				}
			}
			if succ == "" {
				break
			}
			trail = append(trail, adj[cur][succ])
			if succ == cycle[0] {
				break
			}
			cycle = append(cycle, succ)
			cur = succ
		}
		first := trail[0]
		var chain []string
		for _, e := range trail {
			where := fmt.Sprintf("%s: %s -> %s in %s", g.fset.Position(e.pos), e.from, e.to, e.owner.name)
			if e.via != nil {
				where += " via " + e.via.name
				chain = append(chain, where)
				chain = append(chain, g.acquireChain(e.via, e.to)...)
			} else {
				chain = append(chain, where)
			}
		}
		pp.ReportChain(first.pos, chain,
			"lock-order cycle %s -> %s: these mutexes are acquired in conflicting orders (potential deadlock); establish a global order or bless an intended edge with //lint:lockorder allow A->B <reason>",
			strings.Join(cycle, " -> "), cycle[0])
	}
}

func sortedEdgeKeys(m map[string]*lockEdge) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lockSCCs is Tarjan over the lock graph (tiny: one node per mutex class).
func lockSCCs(locks []string, adj map[string]map[string]*lockEdge) [][]string {
	index := make(map[string]int)
	lowlink := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var out [][]string
	idx := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		idx++
		index[v], lowlink[v] = idx, idx
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range sortedEdgeKeys(adj[v]) {
			if index[w] == 0 {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, v := range locks {
		if index[v] == 0 {
			strongconnect(v)
		}
	}
	return out
}
