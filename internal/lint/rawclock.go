package lint

import (
	"go/ast"
)

// rawClockForbidden is the package-time surface that reads or arms the
// wall clock. Everything here has a clockwork.Clock equivalent; anything
// else in package time (Duration arithmetic, Date construction, parsing)
// is pure and allowed.
var rawClockForbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

// RawClock forbids wall-clock time in library code. Every component under
// internal/ must be drivable by the fake clock (internal/clockwork), or
// lease-expiry, failure-detection, and the chaos suite stop being
// deterministic. Only internal/clockwork itself may touch package time's
// clock; tests are exempt (they choose their own clocks).
var RawClock = &Analyzer{
	Name: "rawclock",
	Doc:  "forbid time.Now/Sleep/After/NewTimer/... in internal/* outside internal/clockwork",
	Run: func(pass *Pass) {
		if !isInternalPath(pass.Pkg.Path) || isClockworkPath(pass.Pkg.Path) {
			return
		}
		for _, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if rawClockForbidden[sel.Sel.Name] && isPkgSelector(pass.Pkg.Info, sel, "time") {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock and defeats fake-clock determinism; thread a clockwork.Clock instead",
						sel.Sel.Name)
				}
				return true
			})
		}
	},
}
