package lint

// The bottom-up half of the call-graph build: interface-implementer
// widening, Tarjan SCC condensation, and per-function summaries computed
// callees-first (with a bounded fixpoint inside each SCC so mutual
// recursion converges). Every summary fact carries a witness chain for
// `sensorlint -why`.

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// --- interface widening ---

// ifaceShape renders an interface's method set as a stable string, used to
// cache widening results. Unexported method names are qualified by their
// package so structural matching cannot cross package boundaries.
func ifaceShape(iface *types.Interface) string {
	keys := make([]string, 0, iface.NumMethods())
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		keys = append(keys, methodKey(m)+" "+sigKey(m.Type().(*types.Signature)))
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + ";"
	}
	return out
}

func methodKey(m *types.Func) string {
	if m.Exported() || m.Pkg() == nil {
		return m.Name()
	}
	return m.Pkg().Path() + "." + m.Name()
}

// methodSetOf returns named's full (pointer-receiver) method set keyed by
// methodKey, promoted methods included.
func (g *callGraph) methodSetOf(named *types.Named) map[string]*types.Func {
	if ms, ok := g.methodSets[named]; ok {
		return ms
	}
	ms := make(map[string]*types.Func)
	set := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < set.Len(); i++ {
		if fn, ok := set.At(i).Obj().(*types.Func); ok {
			ms[methodKey(fn)] = fn
		}
	}
	g.methodSets[named] = ms
	return ms
}

// implementersOf widens a dynamic dispatch through iface.fn to the
// matching method of every in-program named type that structurally
// satisfies the interface. Matching is by method name and receiver-less
// signature string, which holds across the loader's two type-check
// universes where types.Implements cannot.
func (g *callGraph) implementersOf(iface *types.Interface, fn *types.Func) []*funcNode {
	shape := ifaceShape(iface)
	byMethod, ok := g.ifaceImpls[shape]
	if !ok {
		byMethod = make(map[string][]*funcNode)
		want := make(map[string]string, iface.NumMethods())
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			want[methodKey(m)] = sigKey(m.Type().(*types.Signature))
		}
		for _, named := range g.namedTypes {
			ms := g.methodSetOf(named)
			satisfies := len(want) > 0
			for key, sk := range want {
				m, ok := ms[key]
				if !ok || sigKey(m.Type().(*types.Signature)) != sk {
					satisfies = false
					break
				}
			}
			if !satisfies {
				continue
			}
			for key := range want {
				if node := g.byKey[ms[key].FullName()]; node != nil {
					byMethod[key] = append(byMethod[key], node)
				}
			}
		}
		for key := range byMethod {
			byMethod[key] = sortNodes(byMethod[key])
		}
		g.ifaceImpls[shape] = byMethod
	}
	return byMethod[methodKey(fn)]
}

// --- SCC condensation ---

// sccOrder returns the strongly connected components of the call graph in
// callees-first order (Tarjan emits an SCC only after every SCC it can
// reach), iteratively so deep call chains cannot overflow the stack.
func (g *callGraph) sccOrder() [][]*funcNode {
	succs := make([][]*funcNode, len(g.nodes))
	for _, n := range g.nodes {
		seen := make(map[int]bool)
		for _, cs := range n.calls {
			for _, t := range cs.targets {
				if !seen[t.id] {
					seen[t.id] = true
					succs[n.id] = append(succs[n.id], t)
				}
			}
		}
	}
	var (
		sccs  [][]*funcNode
		stack []*funcNode
		idx   int
	)
	type frame struct {
		n *funcNode
		i int
	}
	for _, root := range g.nodes {
		if root.index != 0 {
			continue
		}
		frames := []frame{{n: root}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			n := f.n
			if f.i == 0 {
				idx++
				n.index, n.lowlink = idx, idx
				n.onStack = true
				stack = append(stack, n)
			}
			descended := false
			for f.i < len(succs[n.id]) {
				t := succs[n.id][f.i]
				f.i++
				if t.index == 0 {
					frames = append(frames, frame{n: t})
					descended = true
					break
				}
				if t.onStack && t.index < n.lowlink {
					n.lowlink = t.index
				}
			}
			if descended {
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := frames[len(frames)-1].n; n.lowlink < p.lowlink {
					p.lowlink = n.lowlink
				}
			}
			if n.lowlink == n.index {
				var scc []*funcNode
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					m.onStack = false
					scc = append(scc, m)
					if m == n {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// --- summaries ---

// computeSummaries folds leaf facts and callee summaries into every node,
// SCC by SCC. Within an SCC the members are re-summarized until nothing
// changes, so facts flow around mutual-recursion cycles.
func (g *callGraph) computeSummaries() {
	for _, scc := range g.sccOrder() {
		for pass := 0; pass <= len(scc)+1; pass++ {
			changed := false
			for i := len(scc) - 1; i >= 0; i-- {
				if g.summarizeNode(scc[i]) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// summarizeNode recomputes one node's summary, reporting whether any new
// fact appeared. First-witness-wins keeps chains stable and the fold
// monotone.
func (g *callGraph) summarizeNode(n *funcNode) bool {
	changed := false
	set := func(dst **blockWitness, pos tokenPos, desc string, next *funcNode) {
		if *dst == nil {
			*dst = &blockWitness{pos: pos, desc: desc, next: next}
			changed = true
		}
	}
	if n.sum.acquires == nil {
		n.sum.acquires = make(map[string]*blockWitness)
	}
	if !n.blockok {
		for _, pf := range n.parks {
			set(&n.sum.park, pf.pos, pf.desc, nil)
		}
	}
	for _, lf := range n.allocs {
		set(&n.sum.alloc, lf.pos, lf.desc, nil)
	}
	for _, a := range n.acquires {
		if _, ok := n.sum.acquires[a.class.id]; !ok {
			n.sum.acquires[a.class.id] = &blockWitness{pos: a.pos, desc: "acquires " + a.class.id, next: nil}
			changed = true
		}
	}
	for _, cs := range n.calls {
		if !n.blockok && !cs.goStmt && !cs.blessed {
			if cs.rpc {
				set(&n.sum.rpc, cs.pos, "calls "+cs.name+" (RPC boundary)", nil)
			}
			if cs.fsync {
				set(&n.sum.fsync, cs.pos, "calls "+cs.name+" (fsync)", nil)
			}
			if cs.park {
				set(&n.sum.park, cs.pos, "calls "+cs.name+" (parks)", nil)
			}
			for _, t := range cs.targets {
				if t.sum.rpc != nil {
					set(&n.sum.rpc, cs.pos, "calls "+t.name, t)
				}
				if t.sum.fsync != nil {
					set(&n.sum.fsync, cs.pos, "calls "+t.name, t)
				}
				if t.sum.park != nil {
					set(&n.sum.park, cs.pos, "calls "+t.name, t)
				}
			}
		}
		for _, t := range cs.targets {
			if !cs.allocok && t.sum.alloc != nil {
				set(&n.sum.alloc, cs.pos, "calls "+t.name, t)
			}
			if !cs.goStmt {
				for _, id := range sortedWitnessKeys(t.sum.acquires) {
					if _, ok := n.sum.acquires[id]; !ok {
						n.sum.acquires[id] = &blockWitness{pos: cs.pos, desc: "calls " + t.name, next: t}
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// tokenPos keeps summarizeNode's helper signature readable.
type tokenPos = token.Pos

func sortedWitnessKeys(m map[string]*blockWitness) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// witness returns the summary evidence for one fact kind.
func (sm *summary) witness(kind string) *blockWitness {
	switch kind {
	case "rpc":
		return sm.rpc
	case "fsync":
		return sm.fsync
	case "park":
		return sm.park
	case "alloc":
		return sm.alloc
	}
	return nil
}

// chain renders the full evidence trail for n's kind fact, one
// "file:line: what" step per hop, for `sensorlint -why`.
func (g *callGraph) chain(start *blockWitness, kind string) []string {
	var out []string
	seen := make(map[*funcNode]bool)
	w := start
	for w != nil && len(out) < 32 {
		out = append(out, fmt.Sprintf("%s: %s", g.fset.Position(w.pos), w.desc))
		if w.next == nil || seen[w.next] {
			break
		}
		seen[w.next] = true
		w = w.next.sum.witness(kind)
	}
	return out
}

// acquireChain renders the evidence trail for how n transitively acquires
// the lock class id.
func (g *callGraph) acquireChain(n *funcNode, id string) []string {
	var out []string
	seen := map[*funcNode]bool{n: true}
	w := n.sum.acquires[id]
	for w != nil && len(out) < 32 {
		out = append(out, fmt.Sprintf("%s: %s", g.fset.Position(w.pos), w.desc))
		if w.next == nil || seen[w.next] {
			break
		}
		seen[w.next] = true
		w = w.next.sum.acquires[id]
	}
	return out
}

// pathString renders the compact call path "a -> b -> c: leaf" embedded in
// diagnostics, starting from the call site's target.
func (g *callGraph) pathString(t *funcNode, kind string) string {
	out := t.name
	seen := map[*funcNode]bool{t: true}
	w := t.sum.witness(kind)
	for w != nil && len(out) < 300 {
		if w.next == nil || seen[w.next] {
			out += ": " + w.desc
			break
		}
		seen[w.next] = true
		out += " -> " + w.next.name
		w = w.next.sum.witness(kind)
	}
	return out
}
