// Package clockfree lives outside internal/: the library invariants do
// not bind application-level code, so its wall-clock read is a negative
// for every analyzer gated on internal paths.
package clockfree

import "time"

// Stamp may use the wall clock freely.
func Stamp() time.Time { return time.Now() }
