package faultsitecase

// The fault suite must exercise every registered site; these references
// are what checkTestCoverage counts.
var exercised = []string{FaultSiteIngest, FaultSiteFlush}
