// Package faultsitecase exercises sensorlint/faultsite.
package faultsitecase

import "sensorcer/internal/faults"

// Package-level, unique, test-covered constants — the blessed pattern.
const (
	FaultSiteIngest = "/ingest"
	FaultSiteFlush  = "/flush"
)

// FaultSiteOrphan is never referenced from any test.
const FaultSiteOrphan = "/orphan" // want `not exercised by any test`

// FaultSiteFlushAlias collides with FaultSiteFlush by value.
const FaultSiteFlushAlias = "/flush" // want `duplicate fault-injection site`

// Ingest consults its site through a registered constant.
func Ingest(inj *faults.Injector, site string) error {
	return inj.Inject(site + FaultSiteIngest)
}

// Flush likewise.
func Flush(inj *faults.Injector, site string) {
	inj.Drop(site + FaultSiteFlush)
}

// Literal builds the site inline.
func Literal(inj *faults.Injector, site string) error {
	return inj.Inject(site + "/literal") // want `fault-injection site built from a string literal`
}

// LocalConst hides the site in a function-local constant.
func LocalConst(inj *faults.Injector, site string) bool {
	const FaultSiteLocal = "/local"
	return inj.Drop(site + FaultSiteLocal) // want `must be declared at package level`
}
