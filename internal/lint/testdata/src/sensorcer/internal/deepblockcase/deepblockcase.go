// Package deepblockcase exercises sensorlint/deepblock: call paths that
// reach an RPC boundary, an fsync or a channel park while a mutex is
// held, one or more calls deep. Direct RPC-under-lock is lockrpc's
// finding and deliberately absent here.
package deepblockcase

import (
	"os"
	"sync"

	"sensorcer/internal/srpc"
)

var mu sync.Mutex

// file is a handle the fsync scenarios sync; never opened here.
var file *os.File

var ch = make(chan int)

// callRPC is the hop deepblock must see through.
func callRPC() {
	srpc.Ping()
}

// TransitiveRPC reaches the RPC boundary one call deep with mu held.
func TransitiveRPC() {
	mu.Lock()
	callRPC() // want `call to deepblockcase\.callRPC crosses the RPC boundary while deepblockcase\.mu is held`
	mu.Unlock()
}

// syncFile is the hop carrying the fsync fact.
func syncFile() {
	_ = file.Sync()
}

// TransitiveFsync forces the disk one call deep with mu held.
func TransitiveFsync() {
	mu.Lock()
	syncFile() // want `call to deepblockcase\.syncFile forces an fsync while deepblockcase\.mu is held`
	mu.Unlock()
}

// DirectFsync syncs with the lock held — the direct-leaf case.
func DirectFsync() {
	mu.Lock()
	_ = file.Sync() // want `fsync via .*Sync while deepblockcase\.mu is held`
	mu.Unlock()
}

// DirectPark sends on an unbuffered channel with mu held.
func DirectPark() {
	mu.Lock()
	ch <- 1 // want `sends on a channel while deepblockcase\.mu is held`
	mu.Unlock()
}

// waitSignal is the hop carrying the park fact.
func waitSignal() {
	<-ch
}

// TransitivePark parks one call deep with mu held.
func TransitivePark() {
	mu.Lock()
	waitSignal() // want `call to deepblockcase\.waitSignal can park on a channel while deepblockcase\.mu is held`
	mu.Unlock()
}

// ReleasedFirst drops the lock before the hazardous hop: clean.
func ReleasedFirst() {
	mu.Lock()
	mu.Unlock()
	callRPC()
	syncFile()
	waitSignal()
}

// Shipper is dynamic dispatch the analyzer must widen to implementers.
type Shipper interface {
	// Ship moves data somewhere.
	Ship()
}

// RemoteShipper crosses the RPC boundary.
type RemoteShipper struct{}

// Ship crosses the boundary.
func (RemoteShipper) Ship() { srpc.Ping() }

// LocalShipper stays local.
type LocalShipper struct{}

// Ship does nothing.
func (LocalShipper) Ship() {}

// IfaceDispatch widens s.Ship() to every implementer; RemoteShipper's
// Ship reaches the RPC boundary.
func IfaceDispatch(s Shipper) {
	mu.Lock()
	s.Ship() // want `call to deepblockcase\.Shipper\.Ship crosses the RPC boundary while deepblockcase\.mu is held`
	mu.Unlock()
}

// pingLayer and pongLayer are mutually recursive; the RPC fact must flow
// around the strongly connected component.
func pingLayer(depth int) {
	if depth == 0 {
		srpc.Ping()
		return
	}
	pongLayer(depth - 1)
}

// pongLayer bounces back to pingLayer.
func pongLayer(depth int) {
	pingLayer(depth)
}

// MutualRecursion sees the hazard through the SCC summary.
func MutualRecursion() {
	mu.Lock()
	pongLayer(3) // want `call to deepblockcase\.pongLayer crosses the RPC boundary while deepblockcase\.mu is held`
	mu.Unlock()
}

// blessedSync is designed-in blocking: the declaration blessing silences
// findings inside it and stops the fact from propagating to callers.
//
//lint:blockok scenario: the fsync under the lock is the design
func blessedSync() {
	_ = file.Sync()
}

// BlessedCaller calls a blockok function under the lock: clean.
func BlessedCaller() {
	mu.Lock()
	blessedSync()
	mu.Unlock()
}

// Journal is an interface whose blocking method is blessed at the
// interface: dispatch through it is trusted wherever it lands.
type Journal interface {
	// Append is designed-in blocking.
	//
	//lint:blockok scenario: journal-before-ack is the contract
	Append()
}

// ParkingJournal parks in Append; the blessing on the interface method
// covers the dispatch below.
type ParkingJournal struct{}

// Append parks.
func (ParkingJournal) Append() { <-ch }

// JournalCaller dispatches through the blessed method under the lock:
// clean.
func JournalCaller(j Journal) {
	mu.Lock()
	j.Append()
	mu.Unlock()
}

// DeferredHazard: the deferred helper runs at return, before the
// deferred unlock (LIFO), so the lock is still held.
func DeferredHazard() {
	mu.Lock()
	defer mu.Unlock()
	defer syncFile() // want `call to deepblockcase\.syncFile forces an fsync while deepblockcase\.mu is held \(deferred`
}

// GoStatement starts its own goroutine: the new stack holds nothing.
func GoStatement() {
	mu.Lock()
	//lint:ignore sensorlint/goroleak scenario: the goroutine exits after one send attempt
	go callRPC()
	mu.Unlock()
}

// DeferredLIFOReleasedDeep: registered before the deferred unlock, the
// deferred helper replays after it — should be clean.
func DeferredLIFOReleasedDeep() {
	defer syncFile()
	mu.Lock()
	defer mu.Unlock()
}
