// Package goroleakcase exercises sensorlint/goroleak.
package goroleakcase

import "sync"

// Leak spawns a goroutine with no visible exit path.
func Leak() {
	go func() { // want `goroutine has no visible exit path`
		for {
		}
	}()
}

// StopChannel is cancellable via a stop-channel receive.
func StopChannel(stop chan struct{}) {
	go func() {
		<-stop
	}()
}

// Worker drains a channel; closing it terminates the range.
func Worker(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// Tracked signals completion through the WaitGroup handshake.
func Tracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}
