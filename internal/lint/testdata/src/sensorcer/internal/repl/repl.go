// Package repl is the testdata stand-in for the replication layer;
// epochguard requires a requireEpoch* check before any WAL mutation or
// ship call.
package repl

// log is a miniature WAL surface.
type log struct{}

func (log) AppendAt(first uint64, payloads [][]byte) (uint64, error) { return first, nil }
func (log) InstallSnapshot(seq uint64, data []byte) error            { return nil }

// node is a miniature replica.
type node struct {
	l     log
	epoch uint64
}

// requireEpochBackup is the fence (exempt itself, and callable).
func (n *node) requireEpochBackup(epoch uint64) error {
	if epoch < n.epoch {
		return errStale
	}
	return nil
}

var errStale = errorString("stale epoch")

type errorString string

func (e errorString) Error() string { return string(e) }

// GoodShip fences before applying.
func (n *node) GoodShip(epoch, first uint64, payloads [][]byte) (uint64, error) {
	if err := n.requireEpochBackup(epoch); err != nil {
		return 0, err
	}
	return n.l.AppendAt(first, payloads)
}

// BadShip applies a shipped batch with no fence at all.
func (n *node) BadShip(first uint64, payloads [][]byte) (uint64, error) {
	return n.l.AppendAt(first, payloads) // want `durable mutation AppendAt without a preceding epoch fence check`
}

// BadInstall installs a snapshot without the fence.
func (n *node) BadInstall(seq uint64, data []byte) error {
	return n.l.InstallSnapshot(seq, data) // want `durable mutation InstallSnapshot without a preceding epoch fence check`
}
