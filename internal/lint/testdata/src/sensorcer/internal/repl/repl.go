// Package repl is the testdata stand-in for the replication layer;
// epochguard requires a requireEpoch* check before any WAL mutation or
// ship call.
package repl

// log is a miniature WAL surface.
type log struct{}

func (log) AppendAt(first uint64, payloads [][]byte) (uint64, error) { return first, nil }
func (log) InstallSnapshot(seq uint64, data []byte) error            { return nil }

// node is a miniature replica.
type node struct {
	l     log
	epoch uint64
}

// requireEpochBackup is the fence (exempt itself, and callable).
func (n *node) requireEpochBackup(epoch uint64) error {
	if epoch < n.epoch {
		return errStale
	}
	return nil
}

var errStale = errorString("stale epoch")

type errorString string

func (e errorString) Error() string { return string(e) }

// GoodShip fences before applying.
func (n *node) GoodShip(epoch, first uint64, payloads [][]byte) (uint64, error) {
	if err := n.requireEpochBackup(epoch); err != nil {
		return 0, err
	}
	return n.l.AppendAt(first, payloads)
}

// BadShip applies a shipped batch with no fence at all.
func (n *node) BadShip(first uint64, payloads [][]byte) (uint64, error) {
	return n.l.AppendAt(first, payloads) // want `durable mutation AppendAt without a preceding epoch fence check`
}

// BadInstall installs a snapshot without the fence.
func (n *node) BadInstall(seq uint64, data []byte) error {
	return n.l.InstallSnapshot(seq, data) // want `durable mutation InstallSnapshot without a preceding epoch fence check`
}

// shard is a miniature routed shard: publishLocked commits a coordinator
// decision, requireCoordGen is the fencing-token check.
type shard struct {
	gen      uint64
	epoch    uint64
	reconfig chan struct{}
}

// requireCoordGen is the coordinator fence (exempt itself).
func (sh *shard) requireCoordGen(gen uint64) error {
	if gen < sh.gen {
		return errStale
	}
	sh.gen = gen
	return nil
}

// publishLocked commits a configuration (exempt itself; callers carry
// the obligation).
func (sh *shard) publishLocked() {
	close(sh.reconfig)
	sh.reconfig = make(chan struct{})
}

// GoodFailover checks the fencing token before committing the decision.
func (sh *shard) GoodFailover(gen uint64) error {
	if err := sh.requireCoordGen(gen); err != nil {
		return err
	}
	sh.epoch++
	sh.publishLocked()
	return nil
}

// BadFailover bumps the epoch and publishes without consulting the
// fencing token — a deposed coordinator could commit this.
func (sh *shard) BadFailover() {
	sh.epoch++
	sh.publishLocked() // want `durable mutation publishLocked without a preceding epoch fence check`
}

// BadHandoffFlip publishes a handoff flip under an epoch fence only; the
// epoch check does not validate the coordinator's token.
func (n *node) BadHandoffFlip(sh *shard, epoch uint64) error {
	if err := n.requireEpochBackup(epoch); err != nil {
		return err
	}
	sh.publishLocked() // want `durable mutation publishLocked without a preceding epoch fence check`
	return nil
}
