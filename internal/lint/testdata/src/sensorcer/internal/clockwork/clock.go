// Package clockwork is the testdata stand-in for the real clock
// abstraction. It is the one internal package permitted to read the wall
// clock, so its time.Now/time.Sleep uses below are rawclock negatives.
package clockwork

import "time"

// Clock is the injectable time source.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// Real returns the wall clock.
func Real() Clock { return realClock{} }
