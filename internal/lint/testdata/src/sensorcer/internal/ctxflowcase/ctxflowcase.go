// Package ctxflowcase exercises sensorlint/ctxflow.
package ctxflowcase

import "context"

// Fetch takes its context second — the convention violation.
func Fetch(name string, ctx context.Context) error { // want `context\.Context must be the first parameter`
	_ = name
	return ctx.Err()
}

// Root mints a root context inside library code.
func Root() context.Context {
	return context.Background() // want `context\.Background mints a root context`
}

// Todo is the same violation through the other constructor.
func Todo() context.Context {
	return context.TODO() // want `context\.TODO mints a root context`
}

// Good follows both rules.
func Good(ctx context.Context, name string) error {
	_ = name
	<-ctx.Done()
	return ctx.Err()
}

// helper is unexported; the first-parameter rule binds only exported API.
func helper(name string, ctx context.Context) {
	_ = name
	_ = ctx
}

var _ = helper
