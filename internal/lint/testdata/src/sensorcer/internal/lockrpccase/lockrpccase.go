// Package lockrpccase exercises sensorlint/lockrpc.
package lockrpccase

import (
	"sync"

	"sensorcer/internal/remote"
	"sensorcer/internal/srpc"
)

var mu sync.Mutex

// UnderLock calls into the RPC layer with the mutex still held.
func UnderLock() {
	mu.Lock()
	srpc.Ping() // want `call to srpc\.Ping while a sync lock`
	mu.Unlock()
}

// DeferredHold: a deferred unlock keeps the lock held to function end.
func DeferredHold() {
	mu.Lock()
	defer mu.Unlock()
	remote.Fetch() // want `call to remote\.Fetch while a sync lock`
}

// Released unlocks before crossing the boundary.
func Released() {
	mu.Lock()
	mu.Unlock()
	srpc.Ping()
}

// LiteralScope: the returned literal acquired nothing itself; each
// function body is scanned as its own scope.
func LiteralScope() func() {
	mu.Lock()
	defer mu.Unlock()
	return func() {
		srpc.Ping()
	}
}
