// Package lockrpccase exercises sensorlint/lockrpc.
package lockrpccase

import (
	"sync"

	"sensorcer/internal/remote"
	"sensorcer/internal/srpc"
)

var mu sync.Mutex

// UnderLock calls into the RPC layer with the mutex still held.
func UnderLock() {
	mu.Lock()
	srpc.Ping() // want `call to srpc\.Ping while a sync lock`
	mu.Unlock()
}

// DeferredHold: a deferred unlock keeps the lock held to function end.
func DeferredHold() {
	mu.Lock()
	defer mu.Unlock()
	remote.Fetch() // want `call to remote\.Fetch while a sync lock`
}

// Released unlocks before crossing the boundary.
func Released() {
	mu.Lock()
	mu.Unlock()
	srpc.Ping()
}

// LiteralScope: the returned literal acquired nothing itself; each
// function body is scanned as its own scope.
func LiteralScope() func() {
	mu.Lock()
	defer mu.Unlock()
	return func() {
		srpc.Ping()
	}
}

var rw sync.RWMutex

// RLockDeferredHold: a deferred RUnlock pins the read lock to function
// end; the RPC under it is flagged.
func RLockDeferredHold() {
	rw.RLock()
	defer rw.RUnlock()
	srpc.Ping() // want `call to srpc\.Ping while a sync lock`
}

// MismatchedDeferredUnlock: defer rw.Unlock() after an RLock pins just
// the same — the scan tracks depth, not flavor.
func MismatchedDeferredUnlock() {
	rw.RLock()
	defer rw.Unlock()
	remote.Fetch() // want `call to remote\.Fetch while a sync lock`
}

// Relocked: releasing and re-acquiring in the same function re-arms the
// check; the window between them is clean.
func Relocked() {
	mu.Lock()
	srpc.Ping() // want `call to srpc\.Ping while a sync lock`
	mu.Unlock()
	srpc.Ping()
	mu.Lock()
	srpc.Ping() // want `call to srpc\.Ping while a sync lock`
	mu.Unlock()
}

// DeferredAfterExplicitRelease: the deferred RPC runs at return, after
// the explicit unlock — clean. (Regression: the old scan checked
// deferred calls at their registration point, where the lock was still
// held.)
func DeferredAfterExplicitRelease() {
	mu.Lock()
	defer srpc.Ping()
	mu.Unlock()
}

// DeferredLIFOHeld: the RPC deferred after the deferred unlock runs
// before it (LIFO), with the lock still held.
func DeferredLIFOHeld() {
	mu.Lock()
	defer mu.Unlock()
	defer srpc.Ping() // want `call to srpc\.Ping while a sync lock acquired in this function is still held at return`
}

// DeferredLIFOReleased: registered before the deferred unlock, the RPC
// replays after it — clean.
func DeferredLIFOReleased() {
	defer srpc.Ping()
	mu.Lock()
	defer mu.Unlock()
}
