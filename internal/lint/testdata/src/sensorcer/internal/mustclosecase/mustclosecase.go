// Package mustclosecase exercises sensorlint/mustclose.
package mustclosecase

import "sensorcer/internal/lease"

// Closer is a module type whose Close returns a meaningful error.
type Closer struct{}

// Close releases the resource.
func (Closer) Close() error { return nil }

// Journal is a module type with durability methods: a discarded Sync or
// Flush error means data believed durable is not.
type Journal struct{}

// Sync forces buffered records to stable storage.
func (Journal) Sync() error { return nil }

// Flush drains buffered records downstream.
func (Journal) Flush() error { return nil }

// DropBoth discards lifecycle errors implicitly.
func DropBoth(l *lease.Lease, c Closer) {
	l.Cancel() // want `error from lease\.Cancel is silently discarded`
	c.Close()  // want `error from mustclosecase\.Close is silently discarded`
}

// DropDurability discards durability errors implicitly.
func DropDurability(j Journal) {
	j.Sync()  // want `error from mustclosecase\.Sync is silently discarded`
	j.Flush() // want `error from mustclosecase\.Flush is silently discarded`
}

// Explicit discards are visible decisions; handled errors and deferred
// exit-path closes are the normal forms. All allowed.
func Explicit(l *lease.Lease, c Closer, j Journal) error {
	_ = l.Cancel()
	_ = j.Flush()
	defer c.Close()
	if err := j.Sync(); err != nil {
		return err
	}
	if err := c.Close(); err != nil {
		return err
	}
	return nil
}
