// Package mustclosecase exercises sensorlint/mustclose.
package mustclosecase

import "sensorcer/internal/lease"

// Closer is a module type whose Close returns a meaningful error.
type Closer struct{}

// Close releases the resource.
func (Closer) Close() error { return nil }

// DropBoth discards lifecycle errors implicitly.
func DropBoth(l *lease.Lease, c Closer) {
	l.Cancel() // want `error from lease\.Cancel is silently discarded`
	c.Close()  // want `error from mustclosecase\.Close is silently discarded`
}

// Explicit discards are visible decisions; handled errors and deferred
// exit-path closes are the normal forms. All allowed.
func Explicit(l *lease.Lease, c Closer) error {
	_ = l.Cancel()
	defer c.Close()
	if err := c.Close(); err != nil {
		return err
	}
	return nil
}
