// Package streampumpcase exercises goroleak and deepblock on the shapes
// the streaming subscription plane takes: per-subscriber pump goroutines
// (which must have a visible exit path) and a subscriber registry whose
// publish path must never send on a channel — and thereby park on a
// stalled subscriber — while the registry mutex is held. The clean
// variants are the patterns internal/subscribe actually uses: offers are
// select-with-default under the lock, deliveries happen outside it.
package streampumpcase

import "sync"

// sink is one subscriber endpoint: a bounded channel standing in for a
// credit-limited stream.
type sink struct {
	out chan int
}

// offer is the non-blocking delivery attempt: select-with-default never
// parks, so it is safe under the registry lock.
func (s *sink) offer(v int) bool {
	select {
	case s.out <- v:
		return true
	default:
		return false
	}
}

// registry tracks live subscribers, keyed by token.
type registry struct {
	mu   sync.Mutex
	subs map[string]*sink
}

// BroadcastUnderLock delivers with a blocking send while mu is held: one
// stalled subscriber wedges every publisher and sibling behind the lock.
func (r *registry) BroadcastUnderLock(v int) {
	r.mu.Lock()
	for _, s := range r.subs {
		s.out <- v // want `sends on a channel while streampumpcase\.registry\.mu is held`
	}
	r.mu.Unlock()
}

// deliver is the blocking hop deepblock must see through.
func deliver(s *sink, v int) {
	s.out <- v
}

// TransitiveBroadcastUnderLock reaches the blocking send one call deep
// with the registry lock held.
func (r *registry) TransitiveBroadcastUnderLock(v int) {
	r.mu.Lock()
	for _, s := range r.subs {
		deliver(s, v) // want `call to streampumpcase\.deliver can park on a channel while streampumpcase\.registry\.mu is held`
	}
	r.mu.Unlock()
}

// OfferUnderLock is the clean variant: the non-blocking offer may run
// under the lock because a full subscriber loses the value (conflation's
// job) instead of parking the publisher.
func (r *registry) OfferUnderLock(v int) {
	r.mu.Lock()
	for _, s := range r.subs {
		_ = s.offer(v)
	}
	r.mu.Unlock()
}

// CollectThenSend is the other clean variant: snapshot the subscriber set
// under the lock, release it, then block on delivery outside.
func (r *registry) CollectThenSend(v int) {
	r.mu.Lock()
	targets := make([]*sink, 0, len(r.subs))
	for _, s := range r.subs {
		targets = append(targets, s)
	}
	r.mu.Unlock()
	for _, s := range targets {
		s.out <- v
	}
}

// spin is busy work with no channel operations, so the leaky pump below
// has genuinely no visible exit.
func spin(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// LeakyPump spawns a delivery pump that polls forever: no stop channel,
// no select, nothing a Close path could use to unplug it.
func LeakyPump() {
	go func() { // want `goroutine has no visible exit path`
		for {
			spin(64)
		}
	}()
}

// Pump is the clean pump shape internal/subscribe uses: woken by notify,
// stopped by stop, released when the subscriber's stream ends.
func Pump(notify, stop, done chan struct{}, s *sink) {
	go func() {
		for {
			select {
			case <-notify:
				_ = s.offer(1)
			case <-stop:
				return
			case <-done:
				return
			}
		}
	}()
}
