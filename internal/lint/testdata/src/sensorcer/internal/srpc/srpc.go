// Package srpc is the testdata stand-in for the RPC client layer; calls
// into it are what the lockrpc analyzer treats as crossing the boundary.
package srpc

// Ping crosses the RPC boundary.
func Ping() {}
