// Package noalloccase exercises sensorlint/noalloc: a function whose
// declaration carries //lint:noalloc must be transitively
// allocation-free, with //lint:allocok as the per-line escape hatch and
// error-position returns exempt as the repo's pervasive cold path.
package noalloccase

import "fmt"

// Sum is allocation-free: the clean baseline.
//
//lint:noalloc
func Sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// Grow allocates two ways.
//
//lint:noalloc
func Grow(xs []int) []int {
	m := make([]int, 4)   // want `noalloccase\.Grow is marked //lint:noalloc but make allocates`
	xs = append(xs, m...) // want `noalloccase\.Grow is marked //lint:noalloc but append may grow its backing array`
	return xs
}

// helper allocates; annotated callers inherit the fact transitively.
func helper() []byte {
	return make([]byte, 16)
}

// Calls reaches an allocation one call deep.
//
//lint:noalloc
func Calls() {
	helper() // want `noalloccase\.Calls is marked //lint:noalloc but calls noalloccase\.helper, which may allocate`
}

// Accepted uses the escape hatch for an amortized growth.
//
//lint:noalloc
func Accepted(xs []int, v int) []int {
	//lint:allocok scenario: amortized pooled growth
	return append(xs, v)
}

// ErrPath allocates only in the error-position return — the built-in
// cold-path exemption.
//
//lint:noalloc
func ErrPath(x int) (int, error) {
	if x < 0 {
		return 0, fmt.Errorf("noalloccase: negative %d", x)
	}
	return x * 2, nil
}

// each calls f on every element; f is used only in call position, so
// literals passed to it never escape.
func each(xs []int, f func(int)) {
	for _, x := range xs {
		f(x)
	}
}

// NonEscaping passes a literal to a call-only parameter: recognized as
// stack-allocated, no closure-allocation finding.
//
//lint:noalloc
func NonEscaping(xs []int) int {
	t := 0
	each(xs, func(x int) { t += x })
	return t
}

// Boxed converts a concrete value into an interface argument — a heap
// box on the hot path.
//
//lint:noalloc
func Boxed(x int) string {
	return fmt.Sprint(x) // want `noalloccase\.Boxed is marked //lint:noalloc but`
}
