// Package faults is the testdata stand-in for the fault-injection
// registry; the faultsite analyzer keys off its Injector hook methods.
package faults

// Injector decides per-site fault outcomes.
type Injector struct{}

// Inject returns the injected error for site, if any.
func (i *Injector) Inject(site string) error { return nil }

// Drop reports whether the operation at site should be silently lost.
func (i *Injector) Drop(site string) bool { return false }
