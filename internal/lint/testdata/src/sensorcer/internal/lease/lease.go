// Package lease is the testdata stand-in for the lease layer; Cancel's
// error result is what the mustclose analyzer protects.
package lease

// Lease is a granted lease.
type Lease struct{}

// Cancel relinquishes the lease; a failure leaves the entry alive.
func (l *Lease) Cancel() error { return nil }
