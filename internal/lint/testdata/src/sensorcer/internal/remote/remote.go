// Package remote is the testdata stand-in for the remote-proxy layer,
// the second package lockrpc treats as the RPC boundary.
package remote

// Fetch crosses the RPC boundary.
func Fetch() {}
