// Package lockordercase exercises sensorlint/lockorder: mutex classes
// acquired in conflicting orders form a cycle in the global
// lock-acquisition-order graph — a potential ABBA deadlock.
package lockordercase

import "sync"

// A and B are locked in conflicting orders by AB and BA below.
type A struct{ mu sync.Mutex }

// B conflicts with A.
type B struct{ mu sync.Mutex }

// AB acquires A then B — the direct edge the cycle report anchors on.
func AB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle lockordercase\.A\.mu -> lockordercase\.B\.mu -> lockordercase\.A\.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

// lockA is the hop BA's conflicting acquisition flows through: the edge
// B -> A is transitive, proved by the call-graph summary.
func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

// BA acquires B then — through lockA — A.
func BA(a *A, b *B) {
	b.mu.Lock()
	lockA(a)
	b.mu.Unlock()
}

// D and E conflict the same way, but the E->D direction is blessed, so
// no cycle survives.
type D struct{ mu sync.Mutex }

// E conflicts with D.
type E struct{ mu sync.Mutex }

// DE acquires D then E.
func DE(d *D, e *E) {
	d.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	d.mu.Unlock()
}

// ED acquires E then D; the edge annotation removes it from the graph.
//
//lint:lockorder allow lockordercase.E.mu->lockordercase.D.mu scenario: the E-side caller provably never races the D-side
func ED(d *D, e *E) {
	e.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	e.mu.Unlock()
}

// Nested reacquires the same class in sequence on two instances:
// self-edges are skipped (class identity cannot tell instances apart).
func Nested(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}
