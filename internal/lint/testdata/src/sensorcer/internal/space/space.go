// Package space is the testdata stand-in for the tuple space's durable
// layer; epochguard requires checkGuardLocked before any journal call.
package space

// Space is a miniature durable space.
type Space struct {
	guard func() error
}

// checkGuardLocked consults the mutation guard (exempt itself).
func (s *Space) checkGuardLocked() error {
	if s.guard == nil {
		return nil
	}
	return s.guard()
}

// journalLocked is the mutation primitive (exempt itself).
func (s *Space) journalLocked(payload string) error {
	_ = payload
	return nil
}

// journalBatchLocked is the batched primitive (exempt itself).
func (s *Space) journalBatchLocked(payloads []string) error {
	_ = payloads
	return nil
}

// GoodWrite fences before journaling.
func (s *Space) GoodWrite(p string) error {
	if err := s.checkGuardLocked(); err != nil {
		return err
	}
	return s.journalLocked(p)
}

// BadWrite journals without consulting the fence.
func (s *Space) BadWrite(p string) error {
	return s.journalLocked(p) // want `durable mutation journalLocked without a preceding epoch fence check`
}

// BadBatch skips the fence on the batched path.
func (s *Space) BadBatch(ps []string) error {
	return s.journalBatchLocked(ps) // want `durable mutation journalBatchLocked without a preceding epoch fence check`
}

// GuardAfterIsTooLate checks the fence only after the record landed.
func (s *Space) GuardAfterIsTooLate(p string) error {
	if err := s.journalLocked(p); err != nil { // want `durable mutation journalLocked without a preceding epoch fence check`
		return err
	}
	return s.checkGuardLocked()
}

// LiteralScopes shows function literals are independent scopes: the
// outer guard does not cover the closure's journal call.
func (s *Space) LiteralScopes(p string) func() error {
	if err := s.checkGuardLocked(); err != nil {
		return func() error { return err }
	}
	return func() error {
		return s.journalLocked(p) // want `durable mutation journalLocked without a preceding epoch fence check`
	}
}
