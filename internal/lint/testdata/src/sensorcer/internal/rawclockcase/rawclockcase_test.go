package rawclockcase

import "time"

// Test files are exempt: tests choose their own clocks.
var bootStamp = time.Now()
