// Package rawclockcase exercises sensorlint/rawclock.
package rawclockcase

import (
	"time"

	"sensorcer/internal/clockwork"
)

// Tick reads the wall clock directly.
func Tick() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// Nap sleeps on the wall clock.
func Nap() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

// Window references the wall-clock surface as a value — still forbidden.
var Window = time.After // want `time\.After reads the wall clock`

// Allowed: pure Duration arithmetic and an injected clock are fine.
func Allowed(c clockwork.Clock) time.Time {
	d := 2 * time.Second
	_ = d
	return c.Now()
}

// Ignored: the escape hatch with a reason suppresses the diagnostic.
func Ignored() time.Time {
	//lint:ignore sensorlint/rawclock boot stamp is intentionally wall-clock
	return time.Now()
}

// IgnoredBadly lacks a reason, so the directive does not suppress.
func IgnoredBadly() time.Time {
	//lint:ignore sensorlint/rawclock
	return time.Now() // want `time\.Now reads the wall clock`
}
