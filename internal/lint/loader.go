package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader turns directories of Go source into type-checked Packages
// using only the standard library: go/parser for syntax, go/types for
// semantics, and the from-source stdlib importer for dependencies outside
// the module. There is deliberately no golang.org/x/tools here — the repo
// is dependency-free and the analyzers need nothing a from-scratch loader
// cannot provide.
//
// Two views of every package exist: the import view (non-test files only,
// cached, used when other packages import it) and the analysis view (main
// plus in-package test files, so analyzers can see test coverage of fault
// sites). External test packages (package foo_test) are loaded as a
// separate all-test Package.

// sharedFset and sharedStd are process-wide so the expensive from-source
// type-check of stdlib dependencies is paid once even when several loaders
// run in one process (the golden scenarios plus the self-lint meta-test).
var (
	sharedFset *token.FileSet
	sharedStd  types.ImporterFrom
)

func initShared() {
	if sharedFset != nil {
		return
	}
	// The source importer reads &build.Default. Disable cgo so packages
	// like net resolve through their pure-Go fallbacks (no C toolchain
	// needed), and enable the chaos tag so the fault-injection suite is
	// part of the analyzed (and coverage-checked) tree.
	build.Default.CgoEnabled = false
	hasChaos := false
	for _, t := range build.Default.BuildTags {
		if t == "chaos" {
			hasChaos = true
		}
	}
	if !hasChaos {
		build.Default.BuildTags = append(build.Default.BuildTags, "chaos")
	}
	sharedFset = token.NewFileSet()
	sharedStd = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
}

// Package is one type-checked unit under analysis.
type Package struct {
	// Path is the import path ("sensorcer/internal/space").
	Path string
	// Dir is the absolute directory the files came from.
	Dir string
	// Files holds every parsed file, including in-package test files.
	Files []*ast.File
	// Types and Info carry the go/types results for Files.
	Types *types.Package
	Info  *types.Info

	testFiles map[*ast.File]bool
}

// IsTestFile reports whether f came from a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool { return p.testFiles[f] }

// Loader loads and type-checks packages of one module rooted at Dir.
type Loader struct {
	// Dir is the absolute module root directory.
	Dir string
	// Module is the module path every import path is joined under.
	Module string

	imported map[string]*importResult
	loading  map[string]bool
}

type importResult struct {
	pkg *types.Package
	err error
}

// NewLoader creates a loader for the module at dir with the given module
// path (as declared in go.mod).
func NewLoader(dir, module string) *Loader {
	initShared()
	return &Loader{
		Dir:      dir,
		Module:   module,
		imported: make(map[string]*importResult),
		loading:  make(map[string]bool),
	}
}

// Fset returns the file set all positions are resolved against.
func (l *Loader) Fset() *token.FileSet { return sharedFset }

// dirFor maps a module import path to its directory, or ok=false for
// paths outside the module.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.Module {
		return l.Dir, true
	}
	if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		return filepath.Join(l.Dir, filepath.FromSlash(rest)), true
	}
	return "", false
}

// goFilesIn lists the build-constraint-matching .go files of dir.
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		ok, err := build.Default.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("matching %s: %w", filepath.Join(dir, name), err)
		}
		if ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

func parseOne(dir, name string) (*ast.File, error) {
	return parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.ParseComments)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// check type-checks files as package path, returning a hard error when the
// sources do not type-check (the repo builds, so any error here is a real
// defect in the analyzed tree or the loader).
func (l *Loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	var firstErr error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, sharedFset, files, info)
	if firstErr != nil {
		return pkg, fmt.Errorf("type-checking %s: %w", path, firstErr)
	}
	if err != nil {
		return pkg, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return pkg, nil
}

// importModule resolves an in-module import path to its non-test package,
// caching the result.
func (l *Loader) importModule(path string) (*types.Package, error) {
	if r, ok := l.imported[path]; ok {
		return r.pkg, r.err
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("%s is outside module %s", path, l.Module)
	}
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parseOne(dir, name)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	pkg, err := l.check(path, files, nil)
	l.imported[path] = &importResult{pkg: pkg, err: err}
	return pkg, err
}

// loaderImporter adapts a Loader to types.ImporterFrom: module paths load
// from source within the module, everything else delegates to the stdlib
// source importer.
type loaderImporter Loader

// Import implements types.Importer.
func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (li *loaderImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		return l.importModule(path)
	}
	return sharedStd.ImportFrom(path, l.Dir, 0)
}

// Load builds the analysis view of the package at import path: the package
// with its in-package test files, plus (when present) the external test
// package as a second all-test Package. Returns no packages for a
// directory with no buildable files.
func (l *Loader) Load(path string) ([]*Package, error) {
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("%s is outside module %s", path, l.Module)
	}
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	var main, intest, xtest []*ast.File
	testFiles := make(map[*ast.File]bool)
	for _, name := range names {
		f, err := parseOne(dir, name)
		if err != nil {
			return nil, err
		}
		switch {
		case strings.HasSuffix(f.Name.Name, "_test"):
			xtest = append(xtest, f)
			testFiles[f] = true
		case strings.HasSuffix(name, "_test.go"):
			intest = append(intest, f)
			testFiles[f] = true
		default:
			main = append(main, f)
		}
	}
	var pkgs []*Package
	if len(main)+len(intest) > 0 {
		files := append(append([]*ast.File{}, main...), intest...)
		info := newInfo()
		tpkg, err := l.check(path, files, info)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{
			Path: path, Dir: dir, Files: files,
			Types: tpkg, Info: info, testFiles: testFiles,
		})
	}
	if len(xtest) > 0 {
		info := newInfo()
		tpkg, err := l.check(path+"_test", xtest, info)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{
			Path: path, Dir: dir, Files: xtest,
			Types: tpkg, Info: info, testFiles: testFiles,
		})
	}
	return pkgs, nil
}

// Expand resolves package patterns ("./...", "./internal/space", "cmd/...")
// relative to the module root into sorted import paths. Directories named
// testdata or vendor and hidden directories are never descended into.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) error {
		names, err := goFilesIn(dir)
		if err != nil || len(names) == 0 {
			return nil // not a package directory
		}
		rel, err := filepath.Rel(l.Dir, dir)
		if err != nil {
			return err
		}
		path := l.Module
		if rel != "." {
			path = l.Module + "/" + filepath.ToSlash(rel)
		}
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
		return nil
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(strings.TrimPrefix(pat, "./"))
		if pat == "" {
			pat = "."
		}
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(l.Dir, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				return add(p)
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if err := add(filepath.Join(l.Dir, filepath.FromSlash(pat))); err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// FindModuleRoot walks up from dir to the nearest go.mod, returning the
// root directory and the declared module path.
func FindModuleRoot(dir string) (root, module string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
