package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context discipline in library code:
//
//  1. When an exported function or method under internal/* accepts a
//     context.Context, it must be the first parameter — the Go API
//     convention that keeps cancellation wiring mechanical.
//  2. context.Background()/context.TODO() are forbidden in internal/*
//     non-test code: a library that mints its own root context detaches
//     itself from caller cancellation, which is how federations wedge.
//     Roots belong at the edges (cmd/ binaries, tests).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Context first on exported APIs; no context.Background in internal/*",
	Run: func(pass *Pass) {
		if !isInternalPath(pass.Pkg.Path) {
			return
		}
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !fd.Name.IsExported() {
					continue
				}
				checkCtxFirst(pass, fd)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
					return true
				}
				if isPkgSelector(info, sel, "context") {
					pass.Reportf(call.Pos(),
						"context.%s mints a root context inside library code, detaching it from caller cancellation; accept a ctx parameter instead",
						sel.Sel.Name)
				}
				return true
			})
		}
	},
}

// checkCtxFirst reports a context.Context parameter anywhere but first.
func checkCtxFirst(pass *Pass, fd *ast.FuncDecl) {
	idx := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass.Pkg.Info, field.Type) && idx > 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter of exported API %s", fd.Name.Name)
		}
		idx += n
	}
}

// isContextType reports whether the expression denotes context.Context.
func isContextType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Context" && named.Obj().Pkg().Path() == "context"
}
