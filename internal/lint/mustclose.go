package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// mustCloseNames are the lifecycle methods whose error results carry real
// failure information in this codebase: a lease that would not cancel
// keeps an entry alive, an abort that failed leaves a transaction
// half-rolled-back, a close that failed leaks a connection, and a sync or
// flush that failed means data believed durable is not — the fsyncgate
// class of bug the WAL's fail-stop semantics exist to prevent.
var mustCloseNames = map[string]bool{
	"Cancel": true,
	"Abort":  true,
	"Close":  true,
	"Sync":   true,
	"Flush":  true,
}

// MustClose flags statement-position calls to Cancel/Abort/Close and
// Sync/Flush methods (declared in this module, returning exactly one
// error) whose result is implicitly discarded. An explicit `_ = l.Cancel()` is allowed — the
// discard is then a visible, reviewable decision — as is `defer c.Close()`
// on the exit path, where there is no caller left to act on the error.
var MustClose = &Analyzer{
	Name: "mustclose",
	Doc:  "flag implicitly discarded errors from Cancel/Abort/Close on module types",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := unparen(stmt.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pass.Pkg.Info, call)
				if fn == nil || !mustCloseNames[fn.Name()] {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil {
					return true
				}
				path := pkgPathOf(fn)
				if path != pass.Module && !strings.HasPrefix(path, pass.Module+"/") {
					return true
				}
				if sig.Results().Len() != 1 || !isErrorType(sig.Results().At(0).Type()) {
					return true
				}
				pass.Reportf(call.Pos(),
					"error from %s.%s is silently discarded; handle it or discard explicitly with `_ =`",
					path[strings.LastIndex(path, "/")+1:], fn.Name())
				return true
			})
		}
	},
}
