package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// faultSitePrefix is the naming convention for fault-injection site
// constants: `const FaultSiteSend = "/send"`.
const faultSitePrefix = "FaultSite"

// FaultSite enforces the fault-injection registry discipline, repo-wide:
//
//  1. Site strings handed to (*faults.Injector).Inject/Drop in production
//     code must be built from package-level constants — no inline string
//     literals, no function-local constants. Chaos runs replay by seed;
//     a site that drifts or is misspelled silently stops injecting.
//  2. FaultSite* constants must be globally unique by value, so a chaos
//     rule targets exactly one hook point.
//  3. Every FaultSite* constant must be referenced from at least one
//     test, proving the site is actually exercised by the chaos/fault
//     suites rather than dead wiring.
//
// It runs as a program-level pass because uniqueness and test coverage
// are cross-package properties.
var FaultSite = &Analyzer{
	Name: "faultsite",
	Doc:  "fault-injection sites must be unique, test-covered, package-level constants",
	RunProgram: func(pass *ProgramPass) {
		checkSiteArgs(pass)
		consts := collectSiteConsts(pass)
		checkTestCoverage(pass, consts)
	},
}

// checkSiteArgs validates the site expression of every production
// Inject/Drop call.
func checkSiteArgs(pass *ProgramPass) {
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			if pkg.IsTestFile(f) {
				continue
			}
			info := pkg.Info
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if !isInjectorHook(info, call) {
					return true
				}
				validateSiteExpr(pass, info, call.Args[0])
				return true
			})
		}
	}
}

// isInjectorHook reports whether call invokes Inject or Drop on
// *faults.Injector.
func isInjectorHook(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil || (fn.Name() != "Inject" && fn.Name() != "Drop") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Injector" || named.Obj().Pkg() == nil {
		return false
	}
	return isFaultsPath(named.Obj().Pkg().Path())
}

func isFaultsPath(path string) bool {
	return path == "faults" || len(path) > 7 && path[len(path)-7:] == "/faults"
}

// validateSiteExpr walks a site argument: string literals and
// function-local constants are violations; package-level constants and
// dynamic site bases (fields, parameters) are fine.
func validateSiteExpr(pass *ProgramPass, info *types.Info, arg ast.Expr) {
	ast.Inspect(arg, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BasicLit:
			pass.Reportf(v.Pos(),
				"fault-injection site built from a string literal; hoist it into a package-level %s* constant", faultSitePrefix)
		case *ast.Ident:
			if c, ok := info.Uses[v].(*types.Const); ok && c.Pkg() != nil && c.Parent() != c.Pkg().Scope() {
				pass.Reportf(v.Pos(),
					"fault-injection site constant %s must be declared at package level", c.Name())
			}
		}
		return true
	})
}

// siteConst is one collected FaultSite* declaration.
type siteConst struct {
	obj   *types.Const
	pos   ast.Node
	value string
}

// collectSiteConsts gathers every package-level FaultSite* string
// constant from production code, reporting duplicates by value.
func collectSiteConsts(pass *ProgramPass) []siteConst {
	var consts []siteConst
	firstByValue := make(map[string]*types.Const)
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			if pkg.IsTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						c, ok := pkg.Info.Defs[name].(*types.Const)
						if !ok || len(c.Name()) < len(faultSitePrefix) || c.Name()[:len(faultSitePrefix)] != faultSitePrefix {
							continue
						}
						if c.Pkg() == nil || c.Parent() != c.Pkg().Scope() || c.Val().Kind() != constant.String {
							continue
						}
						val := constant.StringVal(c.Val())
						if prev, dup := firstByValue[val]; dup {
							pass.Reportf(name.Pos(),
								"duplicate fault-injection site %q (already registered as %s.%s); sites must be globally unique",
								val, prev.Pkg().Path(), prev.Name())
							continue
						}
						firstByValue[val] = c
						consts = append(consts, siteConst{obj: c, pos: name, value: val})
					}
				}
			}
		}
	}
	return consts
}

// checkTestCoverage requires each site constant to be referenced from at
// least one test file anywhere in the program.
func checkTestCoverage(pass *ProgramPass, consts []siteConst) {
	used := make(map[string]bool) // "pkgpath.Name"
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			if !pkg.IsTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if c, ok := pkg.Info.Uses[id].(*types.Const); ok && c.Pkg() != nil {
					used[c.Pkg().Path()+"."+c.Name()] = true
				}
				return true
			})
		}
	}
	for _, sc := range consts {
		key := sc.obj.Pkg().Path() + "." + sc.obj.Name()
		if !used[key] {
			pass.Reportf(sc.pos.Pos(),
				"fault-injection site %s (%q) is not exercised by any test; add a chaos/fault test that references it",
				sc.obj.Name(), sc.value)
		}
	}
}
