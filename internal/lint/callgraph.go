package lint

// The interprocedural layer: a whole-program call graph over the loaded
// packages with per-function summaries computed bottom-up over strongly
// connected components. The intraprocedural analyzers (lockrpc, epochguard)
// go blind the moment a hazard crosses a function call; the graph is what
// lets deepblock, lockorder and noalloc follow it.
//
// Resolution rules, in order of precision:
//
//   - Direct calls and method calls resolve through go/types. Because the
//     loader type-checks two views of every package (import view and
//     analysis view), *types.Func identities differ between universes, so
//     nodes are keyed by FullName strings, which agree across views.
//   - Interface dispatch is conservatively widened to every in-program
//     named type whose method set structurally satisfies the interface
//     (name + receiver-less signature string), so a call through
//     space.Journal reaches both the WAL-backed journal and the
//     replicating shippingJournal.
//   - Calls through function values first consult a small flow index
//     (values assigned to struct fields, package vars, single-hop setter
//     params, and simple locals), and fall back to widening over every
//     address-taken function, bound method and function literal with an
//     identical signature.
//
// Summaries record, per function: whether it can reach an RPC boundary, an
// fsync, or a channel park (with a witness chain for -why), which global
// mutex classes it transitively acquires, and whether it may allocate.
// `go` statements launch concurrently, so they propagate no blocking or
// lock-acquisition facts to the caller (the goroutine has its own stack of
// held locks) — but the statement itself allocates.
//
// Annotations understood here:
//
//	//lint:blockok <reason>   on a func or interface-method declaration:
//	                          blocking inside is designed in (e.g. the
//	                          journal-before-ack contract); not propagated
//	                          to callers, not reported inside.
//	//lint:noalloc            the function must be transitively
//	                          allocation-free (verified by noalloc).
//	//lint:allocok <reason>   exempts one line from the allocation check.
//	//lint:lockorder allow A->B <reason>  blesses one lock-order edge.
import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"strings"
)

// lockClass identifies a mutex for held-set tracking. Global classes
// (struct fields and package-level vars, e.g. "space.Space.mu") take part
// in the lock-order graph; locals only contribute held depth.
type lockClass struct {
	id     string
	global bool
}

// callSite is one call expression inside a function, with the lock context
// it executes under and its resolved in-program targets.
type callSite struct {
	pos      token.Pos
	name     string // callee display name ("srpc.Ping", "space.Journal.Append")
	targets  []*funcNode
	held     []lockClass // locks held at the site, outermost first
	goStmt   bool        // launched with `go`: runs on another goroutine
	deferred bool        // runs at function return (held reflects the return state)
	rpc      bool        // callee is in an internal/srpc or internal/remote package
	fsync    bool        // callee is (*os.File).Sync
	park     bool        // callee is a known parking stdlib call
	blessed  bool        // dispatched through a //lint:blockok method
	allocok  bool        // an //lint:allocok directive covers this line
}

// leafFact is one position-anchored intraprocedural fact (a channel
// operation that can park, or an allocation site).
type leafFact struct {
	pos  token.Pos
	desc string
	held []lockClass
}

// lockAcq is one direct mutex acquisition and the locks already held.
type lockAcq struct {
	class lockClass
	pos   token.Pos
	held  []lockClass
}

// blockWitness is one step of a summary's evidence chain: the position and
// description inside the owning function, and the callee (nil for a leaf)
// whose own summary continues the chain.
type blockWitness struct {
	pos  token.Pos
	desc string
	next *funcNode
}

// summary is the bottom-up result for one function.
type summary struct {
	rpc      *blockWitness
	fsync    *blockWitness
	park     *blockWitness
	alloc    *blockWitness
	acquires map[string]*blockWitness // global lock class id -> evidence
}

// funcNode is one function in the graph: a declared function or method, or
// a function literal.
type funcNode struct {
	id   int
	pkg  *Package
	name string // "space.(*Space).Write", "expr.compileNum$1"
	pos  token.Pos
	body *ast.BlockStmt
	info *types.Info
	sig  *types.Signature

	noalloc bool
	blockok bool

	// callOnly caches, per param index, whether the (function-typed)
	// parameter is only ever invoked, never stored or passed on — the
	// precondition for noalloc's non-escaping-literal rule.
	callOnly map[int]bool

	calls    []*callSite
	parks    []leafFact
	allocs   []leafFact
	acquires []lockAcq

	sum summary

	// scc bookkeeping (Tarjan)
	index, lowlink int
	onStack        bool
}

// callGraph is the shared whole-program state, built once per analyzed
// package set and cached across the analyzers that consume it.
type callGraph struct {
	fset  *token.FileSet
	nodes []*funcNode
	byKey map[string]*funcNode // types.Func FullName -> node

	// addrTaken maps receiver-less signature strings to every function,
	// bound method or literal used as a value with that signature.
	addrTaken map[string][]*funcNode

	// flow maps storage locations ("f:pkg.Type.field", "v:pkg.name",
	// "l:pos" for params and locals) to the func values observed flowing
	// into them; copies are load-store edges resolved by finishFlow.
	flow   map[string]*flowSet
	copies []copyEdge

	// blessedIface holds FullNames of interface methods declared blockok.
	blessedIface map[string]bool

	// allocokLines marks "file:line" cells covered by //lint:allocok.
	allocokLines map[string]bool

	// lockAllows holds "A->B" edges blessed by //lint:lockorder allow.
	lockAllows map[string]bool

	// namedTypes lists every named (non-alias, non-interface) type in the
	// analyzed program, in deterministic order, for interface widening.
	namedTypes []*types.Named

	// methodSets caches name->method for each named type; ifaceImpls
	// caches widening results per interface shape.
	methodSets map[*types.Named]map[string]*types.Func
	ifaceImpls map[string]map[string][]*funcNode
}

type flowSet struct {
	nodes   []*funcNode
	unknown bool
}

// cgCache memoizes the graph per loaded package set; the three
// interprocedural analyzers run back-to-back over the same Pkgs slice.
var cgCache struct {
	first *Package
	n     int
	g     *callGraph
}

// programGraph returns the (possibly cached) call graph for pp.
func programGraph(pp *ProgramPass) *callGraph {
	if len(pp.Pkgs) == 0 {
		return &callGraph{fset: pp.Fset}
	}
	if cgCache.g != nil && cgCache.first == pp.Pkgs[0] && cgCache.n == len(pp.Pkgs) {
		return cgCache.g
	}
	g := buildCallGraph(pp.Fset, pp.Pkgs)
	cgCache.first, cgCache.n, cgCache.g = pp.Pkgs[0], len(pp.Pkgs), g
	return g
}

// buildCallGraph constructs the graph and computes summaries. Only
// non-test files contribute nodes: the invariants bind library code, and
// test packages are type-checked in separate universes.
func buildCallGraph(fset *token.FileSet, pkgs []*Package) *callGraph {
	g := &callGraph{
		fset:         fset,
		byKey:        make(map[string]*funcNode),
		addrTaken:    make(map[string][]*funcNode),
		flow:         make(map[string]*flowSet),
		blessedIface: make(map[string]bool),
		allocokLines: make(map[string]bool),
		lockAllows:   make(map[string]bool),
		methodSets:   make(map[*types.Named]map[string]*types.Func),
		ifaceImpls:   make(map[string]map[string][]*funcNode),
	}
	for _, pkg := range pkgs {
		g.collectPackage(pkg)
	}
	for _, pkg := range pkgs {
		g.collectValuesAndFlow(pkg)
	}
	g.finishFlow()
	for _, n := range g.nodes {
		if n.body != nil {
			g.scanBody(n)
		}
	}
	g.computeSummaries()
	return g
}

// --- phase A: nodes, annotations, named types ---

// collectPackage creates nodes for every function declaration and literal
// in pkg's non-test files, records annotations, and indexes named types.
func (g *callGraph) collectPackage(pkg *Package) {
	for _, f := range pkg.Files {
		if pkg.IsTestFile(f) {
			continue
		}
		g.collectComments(pkg, f)
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				g.collectFuncDecl(pkg, d)
			case *ast.GenDecl:
				g.collectIfaceAnnotations(pkg, d)
			}
		}
	}
	// Named types for interface widening, in scope order (already sorted).
	if pkg.Types == nil || strings.HasSuffix(pkg.Types.Name(), "_test") {
		return
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		g.namedTypes = append(g.namedTypes, named)
	}
}

// collectComments records //lint:allocok lines and //lint:lockorder allow
// directives. Like lint:ignore, a reason is mandatory; a directive covers
// its own line and the line below.
func (g *callGraph) collectComments(pkg *Package, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "lint:allocok"); ok {
				if strings.TrimSpace(rest) == "" {
					continue // a reason is mandatory
				}
				pos := g.fset.Position(c.Pos())
				g.allocokLines[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = true
				g.allocokLines[fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)] = true
			}
			if rest, ok := strings.CutPrefix(text, "lint:lockorder allow "); ok {
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // a reason is mandatory
				}
				g.lockAllows[fields[0]] = true
			}
		}
	}
}

// docHasDirective reports whether a declaration doc comment carries the
// given lint directive, returning its trailing text.
func docHasDirective(doc *ast.CommentGroup, directive string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, directive); ok {
			if rest == "" || strings.HasPrefix(rest, " ") {
				return strings.TrimSpace(rest), true
			}
		}
	}
	return "", false
}

// collectFuncDecl registers the declared function and every literal nested
// inside it as graph nodes.
func (g *callGraph) collectFuncDecl(pkg *Package, d *ast.FuncDecl) {
	obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
	if obj == nil {
		return
	}
	n := &funcNode{
		id:   len(g.nodes),
		pkg:  pkg,
		name: displayName(obj),
		pos:  d.Name.Pos(),
		body: d.Body,
		info: pkg.Info,
		sig:  obj.Type().(*types.Signature),
	}
	if _, ok := docHasDirective(d.Doc, "lint:noalloc"); ok {
		n.noalloc = true
	}
	if reason, ok := docHasDirective(d.Doc, "lint:blockok"); ok && reason != "" {
		n.blockok = true
	}
	g.nodes = append(g.nodes, n)
	g.byKey[obj.FullName()] = n

	// Nested literals, in source order. Blessings on the enclosing
	// declaration cover its literals: a blockok function's closures are
	// part of the same designed-in critical section.
	if d.Body == nil {
		return
	}
	lit := 0
	ast.Inspect(d.Body, func(node ast.Node) bool {
		fl, ok := node.(*ast.FuncLit)
		if !ok {
			return true
		}
		lit++
		litSig, _ := pkg.Info.Types[fl].Type.(*types.Signature)
		ln := &funcNode{
			id:      len(g.nodes),
			pkg:     pkg,
			name:    fmt.Sprintf("%s$%d", n.name, lit),
			pos:     fl.Pos(),
			body:    fl.Body,
			info:    pkg.Info,
			sig:     litSig,
			blockok: n.blockok,
		}
		g.nodes = append(g.nodes, ln)
		g.byKey[litKey(fl)] = ln
		return true
	})
}

// litKey keys a function literal by its position (unique in the shared fset).
func litKey(fl *ast.FuncLit) string { return fmt.Sprintf("lit@%d", fl.Pos()) }

// collectIfaceAnnotations records //lint:blockok on interface method
// declarations, which blesses every dynamic dispatch through that method.
func (g *callGraph) collectIfaceAnnotations(pkg *Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		it, ok := ts.Type.(*ast.InterfaceType)
		if !ok {
			continue
		}
		for _, m := range it.Methods.List {
			if len(m.Names) == 0 {
				continue
			}
			if reason, ok := docHasDirective(m.Doc, "lint:blockok"); !ok || reason == "" {
				continue
			}
			if fn, ok := pkg.Info.Defs[m.Names[0]].(*types.Func); ok {
				g.blessedIface[fn.FullName()] = true
			}
		}
	}
}

// displayName renders a compact human name: pkg.(recv).Func.
func displayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = shortPath(fn.Pkg().Path()) + "."
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s(%s%s).%s", pkg, ptr, named.Obj().Name(), fn.Name())
		}
	}
	return pkg + fn.Name()
}

func shortPath(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// --- phase B: address-taken values and the flow index ---

// collectValuesAndFlow walks every non-test file recording (a) functions,
// bound methods and literals used as values (for signature widening), (b)
// assignments of func values into fields, package vars, setter params and
// simple locals (for precise indirect-call resolution), and (c) per-param
// "call-only" facts used by noalloc's non-escaping-literal rule.
func (g *callGraph) collectValuesAndFlow(pkg *Package) {
	info := pkg.Info
	for _, f := range pkg.Files {
		if pkg.IsTestFile(f) {
			continue
		}
		// Every expression appearing as a call's Fun: uses there are
		// invocations, not values.
		callFuns := make(map[ast.Expr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				callFuns[unparen(call.Fun)] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.Ident:
				g.recordFuncValue(info, v, callFuns)
			case *ast.SelectorExpr:
				g.recordFuncValue(info, v, callFuns)
				return true
			case *ast.FuncLit:
				if !callFuns[ast.Expr(v)] {
					if node := g.byKey[litKey(v)]; node != nil {
						g.addAddrTaken(info, v, node)
					}
				}
			case *ast.AssignStmt:
				for i := range v.Lhs {
					if i < len(v.Rhs) {
						g.recordFlow(info, pkg, v.Lhs[i], v.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, name := range v.Names {
					if i < len(v.Values) {
						g.recordFlow(info, pkg, name, v.Values[i])
					}
				}
			case *ast.CompositeLit:
				g.recordCompositeFlow(info, v)
			case *ast.CallExpr:
				g.recordArgFlow(info, v)
			}
			return true
		})
	}
}

// recordFuncValue indexes an identifier or selector that names a function
// but is not being called: it is a func value with the expression's
// signature type.
func (g *callGraph) recordFuncValue(info *types.Info, expr ast.Expr, callFuns map[ast.Expr]bool) {
	if callFuns[expr] {
		return
	}
	var obj types.Object
	switch v := expr.(type) {
	case *ast.Ident:
		obj = info.Uses[v]
	case *ast.SelectorExpr:
		obj = info.Uses[v.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	node := g.byKey[fn.FullName()]
	if node == nil {
		return
	}
	g.addAddrTaken(info, expr, node)
	// A function whose address escapes can be invoked with arguments the
	// flow index never saw; its params must fall back to widening.
	if sig, ok := fn.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if _, isFunc := p.Type().(*types.Signature); isFunc {
				g.flowInto(fmt.Sprintf("l:%d", p.Pos()), nil, true)
			}
		}
	}
}

func (g *callGraph) addAddrTaken(info *types.Info, expr ast.Expr, node *funcNode) {
	tv, ok := info.Types[expr]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	key := sigKey(sig)
	for _, existing := range g.addrTaken[key] {
		if existing == node {
			return
		}
	}
	g.addrTaken[key] = append(g.addrTaken[key], node)
}

// sigKey renders a receiver-less signature with package-path qualifiers,
// stable across the loader's two type-check universes.
func sigKey(sig *types.Signature) string {
	plain := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(plain, func(p *types.Package) string { return p.Path() })
}

// locOf maps an assignable expression to a flow-location key, or "".
func locOf(info *types.Info, pkg *Package, expr ast.Expr) string {
	switch v := unparen(expr).(type) {
	case *ast.Ident:
		obj := info.Defs[v]
		if obj == nil {
			obj = info.Uses[v]
		}
		vr, ok := obj.(*types.Var)
		if !ok {
			return ""
		}
		if vr.Parent() != nil && vr.Pkg() != nil && vr.Parent() == vr.Pkg().Scope() {
			return "v:" + vr.Pkg().Path() + "." + vr.Name()
		}
		return fmt.Sprintf("l:%d", vr.Pos())
	case *ast.SelectorExpr:
		sel := info.Selections[v]
		if sel == nil || sel.Kind() != types.FieldVal {
			return ""
		}
		return fieldLoc(sel.Recv(), v.Sel.Name)
	}
	return ""
}

// fieldLoc keys a struct field by its defining named type and field name.
func fieldLoc(recv types.Type, field string) string {
	t := recv
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return "f:" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field
}

// resolveFuncValue resolves an expression to the func nodes it denotes:
// a literal, a named function/method, or a load from a tracked location.
func (g *callGraph) resolveFuncValue(info *types.Info, pkg *Package, expr ast.Expr) ([]*funcNode, bool) {
	switch v := unparen(expr).(type) {
	case *ast.FuncLit:
		if n := g.byKey[litKey(v)]; n != nil {
			return []*funcNode{n}, true
		}
	case *ast.Ident:
		if fn, ok := info.Uses[v].(*types.Func); ok {
			if n := g.byKey[fn.FullName()]; n != nil {
				return []*funcNode{n}, true
			}
			return nil, false // external function value
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[v.Sel].(*types.Func); ok {
			if n := g.byKey[fn.FullName()]; n != nil {
				return []*funcNode{n}, true
			}
			return nil, false
		}
	}
	return nil, false
}

// recordFlow records rhs flowing into the location named by lhs, when lhs
// has function type.
func (g *callGraph) recordFlow(info *types.Info, pkg *Package, lhs, rhs ast.Expr) {
	tv, ok := info.Types[unparen(rhs)]
	if !ok {
		if id, isIdent := lhs.(*ast.Ident); isIdent {
			if def := info.Defs[id]; def != nil {
				tv, ok = types.TypeAndValue{Type: def.Type()}, true
			}
		}
		if !ok {
			return
		}
	}
	if _, isFunc := tv.Type.(*types.Signature); !isFunc {
		return
	}
	loc := locOf(info, pkg, lhs)
	if loc == "" {
		return
	}
	nodes, known := g.resolveFuncValue(info, pkg, rhs)
	if !known {
		// A load from another tracked location is a copy, not an unknown:
		// `s.guard = g` adopts whatever flowed into the param g.
		if src := locOf(info, pkg, rhs); src != "" {
			g.flowInto(loc, nil, false)
			g.copies = append(g.copies, copyEdge{from: src, to: loc})
			return
		}
	}
	g.flowInto(loc, nodes, !known)
}

// recordCompositeFlow records func values assigned through struct literals.
func (g *callGraph) recordCompositeFlow(info *types.Info, lit *ast.CompositeLit) {
	tv, ok := info.Types[lit]
	if !ok {
		return
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var fieldName string
		value := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				fieldName = id.Name
			}
			value = kv.Value
		} else if i < st.NumFields() {
			fieldName = st.Field(i).Name()
		}
		if fieldName == "" {
			continue
		}
		vt, ok := info.Types[unparen(value)]
		if !ok {
			continue
		}
		if _, isFunc := vt.Type.(*types.Signature); !isFunc {
			continue
		}
		loc := fieldLoc(named, fieldName)
		if loc == "" {
			continue
		}
		nodes, known := g.resolveFuncValue(info, nil, value)
		g.flowInto(loc, nodes, !known)
	}
}

// recordArgFlow records func-typed arguments flowing into the params of a
// directly-resolved in-program callee (the single-hop setter pattern:
// SetGuard(n.guard) makes n.guard a target of calls through the field the
// setter stores into, via the param location).
func (g *callGraph) recordArgFlow(info *types.Info, call *ast.CallExpr) {
	fn := calleeOf(info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len()-1 {
			pi = sig.Params().Len() - 1
		}
		if pi < 0 || pi >= sig.Params().Len() {
			continue
		}
		p := sig.Params().At(pi)
		if _, isFunc := p.Type().(*types.Signature); !isFunc {
			continue
		}
		nodes, known := g.resolveFuncValue(info, nil, arg)
		g.flowInto(fmt.Sprintf("l:%d", p.Pos()), nodes, !known)
	}
}

func (g *callGraph) flowInto(loc string, nodes []*funcNode, unknown bool) {
	fs := g.flow[loc]
	if fs == nil {
		fs = &flowSet{}
		g.flow[loc] = fs
	}
	if unknown {
		fs.unknown = true
	}
	for _, n := range nodes {
		dup := false
		for _, e := range fs.nodes {
			if e == n {
				dup = true
			}
		}
		if !dup {
			fs.nodes = append(fs.nodes, n)
		}
	}
}

// finishFlow propagates flow sets along copy edges (`x.f = p` with p a
// param makes the field adopt everything observed flowing into the param)
// until a fixpoint, so the single-hop setter pattern resolves precisely.
func (g *callGraph) finishFlow() {
	for changed := true; changed; {
		changed = false
		for _, e := range g.copies {
			src, dst := g.flow[e.from], g.flow[e.to]
			if src == nil || dst == nil {
				continue
			}
			if src.unknown && !dst.unknown {
				dst.unknown = true
				changed = true
			}
			for _, n := range src.nodes {
				dup := false
				for _, have := range dst.nodes {
					if have == n {
						dup = true
					}
				}
				if !dup {
					dst.nodes = append(dst.nodes, n)
					changed = true
				}
			}
		}
	}
}

type copyEdge struct{ from, to string }
