package lint

// NoAlloc statically enforces the zero-allocation contract of the hot
// paths PR 5 bought with pooling and the expression VM: a function whose
// declaration carries `//lint:noalloc` must be transitively allocation
// free — no map/slice/closure construction, no interface boxing, no
// append growth, no call into code that may allocate. The alloc
// benchmarks prove the property on the benchmarked inputs; this check
// proves it on every path, and keeps a future edit from silently
// reintroducing a per-read allocation under million-user load.
//
// Escape hatches, each requiring a reason:
//
//	//lint:allocok <reason>   on (or above) a line: that allocation is
//	                          accepted — amortized pooled growth, a cold
//	                          fallback — and is not propagated to
//	                          annotated callers either.
//
// Two exemptions are built in, because they are the repo's pervasive cold
// paths: the error-position result of a `return` (e.g. `return 0,
// evalErrf(...)`) and the arguments of `panic`. Function literals passed
// directly to a call-only parameter of a statically resolved callee are
// recognized as non-escaping and exempt (the compiler stack-allocates
// them); `go` statements and escaping closures are not.

var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "verify //lint:noalloc functions are transitively allocation-free",
	RunProgram: func(pp *ProgramPass) {
		g := programGraph(pp)
		for _, n := range g.nodes {
			if !n.noalloc {
				continue
			}
			for _, lf := range n.allocs {
				pp.Reportf(lf.pos,
					"%s is marked //lint:noalloc but %s; restructure, or accept it with //lint:allocok <reason>",
					n.name, lf.desc)
			}
			reported := make(map[*funcNode]bool)
			for _, cs := range n.calls {
				if cs.allocok {
					continue
				}
				for _, t := range cs.targets {
					if t.sum.alloc == nil || reported[t] {
						continue
					}
					reported[t] = true
					pp.ReportChain(cs.pos, g.chain(t.sum.alloc, "alloc"),
						"%s is marked //lint:noalloc but calls %s, which may allocate (path: %s)",
						n.name, t.name, g.pathString(t, "alloc"))
				}
			}
		}
	},
}
