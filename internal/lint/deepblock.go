package lint

// DeepBlock is the transitive generalization of lockrpc: using the
// whole-program call graph it flags any path that reaches an RPC boundary
// (internal/srpc, internal/remote), a WAL fsync ((*os.File).Sync), or a
// channel park while a mutex acquired in the reporting function is still
// held. One wedged provider, slow disk or absent receiver then stalls
// every goroutine contending for that mutex — the exact coupling a managed
// federation exists to prevent.
//
// Division of labor: a *direct* RPC call under a lock is lockrpc's finding
// and is not re-reported here; deepblock adds everything lockrpc cannot
// see — hazards one or more calls deep, fsyncs, and channel operations.
// Designed-in blocking (the journal-before-ack contract, the WAL's
// group-commit fsync) is blessed at its declaration with
// `//lint:blockok <reason>`, which both silences findings inside the
// blessed function and stops its blocking facts from propagating to
// callers. Dispatch through an interface method annotated blockok is
// likewise trusted.

var DeepBlock = &Analyzer{
	Name: "deepblock",
	Doc:  "flag call paths reaching RPC/fsync/channel-park while a mutex is held (interprocedural)",
	RunProgram: func(pp *ProgramPass) {
		g := programGraph(pp)
		for _, n := range g.nodes {
			if n.blockok {
				continue
			}
			for _, pf := range n.parks {
				if len(pf.held) == 0 {
					continue
				}
				pp.ReportChain(pf.pos, nil,
					"%s while %s is held; an absent or slow peer goroutine wedges every waiter on the lock",
					pf.desc, pf.held[len(pf.held)-1].id)
			}
			for _, cs := range n.calls {
				if len(cs.held) == 0 || cs.goStmt || cs.blessed {
					continue
				}
				lock := cs.held[len(cs.held)-1].id
				when := ""
				if cs.deferred {
					when = " (deferred: runs at return with the lock still held)"
				}
				// Direct leaf hazards lockrpc does not cover.
				if cs.fsync {
					pp.ReportChain(cs.pos, nil,
						"fsync via %s while %s is held%s; release the lock before forcing the disk",
						cs.name, lock, when)
				}
				if cs.park {
					pp.ReportChain(cs.pos, nil,
						"call to %s parks while %s is held%s; release the lock first",
						cs.name, lock, when)
				}
				// Transitive hazards through callee summaries.
				reported := map[string]bool{}
				for _, t := range cs.targets {
					for _, kind := range [...]string{"rpc", "fsync", "park"} {
						if reported[kind] || t.sum.witness(kind) == nil {
							continue
						}
						reported[kind] = true
						verb := map[string]string{
							"rpc":   "crosses the RPC boundary",
							"fsync": "forces an fsync",
							"park":  "can park on a channel",
						}[kind]
						pp.ReportChain(cs.pos, g.chain(t.sum.witness(kind), kind),
							"call to %s %s while %s is held%s (path: %s); release the lock before blocking, or bless the design with //lint:blockok",
							cs.name, verb, lock, when, g.pathString(t, kind))
					}
				}
			}
		}
	},
}
