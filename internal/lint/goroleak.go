package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak flags `go func` literals in library code with no visible exit
// path. A federation provider that wedges a goroutine can never be
// unplugged cleanly, so every library goroutine must be observably
// cancellable: a receive (ctx.Done(), a done/stop channel, a timer), a
// select, a send that a consumer drains, a range over a closable channel,
// or a WaitGroup.Done handshake. The check is syntactic and
// intraprocedural by design — it asks that the exit path be *visible in
// the literal*, which is also the reviewable style the repo wants.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "flag go-statement func literals in internal/* with no visible exit path",
	Run: func(pass *Pass) {
		if !isInternalPath(pass.Pkg.Path) {
			return
		}
		for _, f := range pass.Pkg.Files {
			if pass.Pkg.IsTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := unparen(g.Call.Fun).(*ast.FuncLit)
				if !ok {
					return true
				}
				if !hasExitPath(pass.Pkg.Info, lit.Body) {
					pass.Reportf(g.Pos(),
						"goroutine has no visible exit path (no ctx.Done/stop-channel receive, select, channel send, channel range, or WaitGroup.Done); library goroutines must be cancellable")
				}
				return true
			})
		}
	},
}

// hasExitPath reports whether body contains any construct that lets the
// goroutine terminate or be observed terminating.
func hasExitPath(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := unparen(v.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				found = true // ctx.Done() or wg.Done()
			}
		}
		return !found
	})
	return found
}
