package srpc

import (
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tick is one stream payload for the tests.
type tick struct {
	N int `json:"n"`
}

// streamServer serves "subscribe.ticks": it pushes params.Count ticks as
// fast as credit allows, conflating nothing (the subscription plane owns
// conflation; srpc only owns the window), then closes the stream.
type tickFeed struct {
	mu      sync.Mutex
	streams []*ServerStream
}

func (tf *tickFeed) add(st *ServerStream) {
	tf.mu.Lock()
	tf.streams = append(tf.streams, st)
	tf.mu.Unlock()
}

type ticksParams struct {
	Count int `json:"count"`
	// Hold keeps the stream open after Count ticks (push-on-demand tests).
	Hold bool `json:"hold,omitempty"`
}

func newStreamServer(t *testing.T) (*Server, *tickFeed) {
	t.Helper()
	s := NewServer()
	feed := &tickFeed{}
	HandleStreamFunc(s, "subscribe.ticks", func(p ticksParams, st *ServerStream) error {
		feed.add(st)
		go func() {
			sent := 0
			for sent < p.Count {
				err := st.TrySend(tick{N: sent})
				if err == nil {
					sent++
					continue
				}
				if errors.Is(err, ErrStreamClosed) {
					return
				}
				// Out of credit: park until the subscriber replenishes.
				select {
				case <-st.Ready():
				case <-st.Done():
					return
				}
			}
			if !p.Hold {
				st.Close(nil)
			} else {
				<-st.Done()
			}
		}()
		return nil
	})
	HandleStreamFunc(s, "subscribe.reject", func(struct{}, *ServerStream) error {
		return errors.New("subscription refused")
	})
	HandleFunc(s, "ping", func(struct{}) (any, error) { return "pong", nil })
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, feed
}

// waitCond polls until cond holds or the deadline passes.
func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	s, _ := newStreamServer(t)
	c := dial(t, s)
	st, err := c.OpenStream("subscribe.ticks", ticksParams{Count: 100}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		var tk tick
		if err := st.Recv(&tk, 2*time.Second); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if tk.N != i {
			t.Fatalf("tick %d = %d (out of order)", i, tk.N)
		}
	}
	var tk tick
	if err := st.Recv(&tk, 2*time.Second); err != io.EOF {
		t.Fatalf("after close: err = %v, want io.EOF", err)
	}
}

func TestStreamUnknownMethod(t *testing.T) {
	s, _ := newStreamServer(t)
	c := dial(t, s)
	st, err := c.OpenStream("subscribe.nope", nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	var re *RemoteError
	if err := st.Recv(nil, 2*time.Second); !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestStreamHandlerReject(t *testing.T) {
	s, _ := newStreamServer(t)
	c := dial(t, s)
	st, err := c.OpenStream("subscribe.reject", struct{}{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = st.Recv(nil, 2*time.Second)
	var re *RemoteError
	if !errors.As(err, &re) || re.Message != "subscription refused" {
		t.Fatalf("err = %v, want remote 'subscription refused'", err)
	}
}

func TestStreamAuth(t *testing.T) {
	s, _ := newStreamServer(t)
	s.SetToken("sesame")
	c := dial(t, s)
	st, err := c.OpenStream("subscribe.ticks", ticksParams{Count: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var re *RemoteError
	if err := st.Recv(nil, 2*time.Second); !errors.As(err, &re) {
		t.Fatalf("unauthenticated open: err = %v, want RemoteError", err)
	}

	c2 := dial(t, s)
	c2.SetToken("sesame")
	st2, err := c2.OpenStream("subscribe.ticks", ticksParams{Count: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var tk tick
	if err := st2.Recv(&tk, 2*time.Second); err != nil {
		t.Fatalf("authenticated open: %v", err)
	}
}

func TestStreamNeedsBinary(t *testing.T) {
	s, _ := newStreamServer(t)
	c, err := DialCodec(s.Addr(), CodecJSON, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := c.OpenStream("subscribe.ticks", ticksParams{Count: 1}, 4); !errors.Is(err, ErrStreamsNeedBinary) {
		t.Fatalf("err = %v, want ErrStreamsNeedBinary", err)
	}
}

// TestStreamCreditNeverBlocksSiblings is the backpressure contract: one
// subscriber that stops consuming exhausts its own window while a
// sibling stream on the same connection keeps flowing and plain calls
// still answer.
func TestStreamCreditNeverBlocksSiblings(t *testing.T) {
	s, feed := newStreamServer(t)
	c := dial(t, s)

	stalled, err := c.OpenStream("subscribe.ticks", ticksParams{Count: 1000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = stalled // never Recv: its window fills after 4 frames
	live, err := c.OpenStream("subscribe.ticks", ticksParams{Count: 500}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		var tk tick
		if err := live.Recv(&tk, 2*time.Second); err != nil {
			t.Fatalf("sibling recv %d stalled: %v", i, err)
		}
	}
	// Plain request/response on the same connection still flows.
	var pong string
	if err := c.Call("ping", nil, &pong); err != nil || pong != "pong" {
		t.Fatalf("call alongside stalled stream: %v %q", err, pong)
	}
	// The stalled producer is parked on Ready, not wedged: the server
	// stream ends up with zero credit. Handler goroutines register with
	// the feed in racy order, so find the stalled stream by its ID, and
	// poll — the producer may still be burning its window down.
	var st0 *ServerStream
	waitCond(t, func() bool {
		feed.mu.Lock()
		defer feed.mu.Unlock()
		for _, fs := range feed.streams {
			if fs.id == stalled.id {
				st0 = fs
				return true
			}
		}
		return false
	})
	deadline := time.Now().Add(2 * time.Second)
	for st0.Credit() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled stream credit = %d, want 0", st0.Credit())
		}
		time.Sleep(time.Millisecond)
	}
	if err := st0.TrySend(tick{}); !errors.Is(err, ErrNoCredit) {
		t.Fatalf("TrySend on exhausted window = %v, want ErrNoCredit", err)
	}
}

// TestStreamClientCloseReleasesServer proves a subscriber disconnect
// mid-burst reaches the producer promptly via Done.
func TestStreamClientCloseReleasesServer(t *testing.T) {
	s, feed := newStreamServer(t)
	c := dial(t, s)
	st, err := c.OpenStream("subscribe.ticks", ticksParams{Count: 10, Hold: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var tk tick
	if err := st.Recv(&tk, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	st.Close()
	feed.mu.Lock()
	srv := feed.streams[0]
	feed.mu.Unlock()
	select {
	case <-srv.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("server stream never observed the client close")
	}
	if err := srv.TrySend(tick{}); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("TrySend after close = %v, want ErrStreamClosed", err)
	}
}

// TestStreamConnDropReleasesServer: killing the whole client connection
// mid-stream tears every server stream down.
func TestStreamConnDropReleasesServer(t *testing.T) {
	s, feed := newStreamServer(t)
	c := dial(t, s)
	if _, err := c.OpenStream("subscribe.ticks", ticksParams{Count: 5, Hold: true}, 4); err != nil {
		t.Fatal(err)
	}
	// Wait for the stream to register server-side.
	deadline := time.Now().Add(2 * time.Second)
	for {
		feed.mu.Lock()
		n := len(feed.streams)
		feed.mu.Unlock()
		if n == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	feed.mu.Lock()
	srv := feed.streams[0]
	feed.mu.Unlock()
	select {
	case <-srv.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("server stream never observed the connection drop")
	}
}

// TestStreamConnDropFailsClient: the server going away fails pending
// Recvs with ErrConnClosed instead of hanging.
func TestStreamConnDropFailsClient(t *testing.T) {
	s, _ := newStreamServer(t)
	c := dial(t, s)
	st, err := c.OpenStream("subscribe.ticks", ticksParams{Count: 1, Hold: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var tk tick
	if err := st.Recv(&tk, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := st.Recv(&tk, 2*time.Second); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("recv after server close = %v, want ErrConnClosed", err)
	}
}

// TestStreamManyOverOneConn multiplexes many concurrent streams over a
// single negotiated connection — the fan-in shape the subscription plane
// relies on.
func TestStreamManyOverOneConn(t *testing.T) {
	s, _ := newStreamServer(t)
	c := dial(t, s)
	const streams, ticks = 50, 40
	var wg sync.WaitGroup
	var failed atomic.Int32
	for i := 0; i < streams; i++ {
		st, err := c.OpenStream("subscribe.ticks", ticksParams{Count: ticks}, 8)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(st *ClientStream) {
			defer wg.Done()
			for j := 0; j < ticks; j++ {
				var tk tick
				if err := st.Recv(&tk, 5*time.Second); err != nil || tk.N != j {
					failed.Add(1)
					return
				}
			}
		}(st)
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d of %d streams failed", n, streams)
	}
}

// TestStreamNoGoroutineLeak churns subscribe/burst/disconnect cycles and
// checks the goroutine count settles back — pumps and handlers must not
// accumulate.
func TestStreamNoGoroutineLeak(t *testing.T) {
	s, _ := newStreamServer(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		c := dial(t, s)
		st, err := c.OpenStream("subscribe.ticks", ticksParams{Count: 1000, Hold: true}, 4)
		if err != nil {
			t.Fatal(err)
		}
		var tk tick
		_ = st.Recv(&tk, 2*time.Second)
		c.Close() // disconnect mid-burst
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: before %d, after churn %d", before, runtime.NumGoroutine())
}
