// Stream multiplexing (ROADMAP item 2): many server-push streams share
// one negotiated binary connection, so a subscriber fleet does not pay a
// TCP connection (or a poll loop) per subscription. Streams ride the
// same length-prefixed framing as requests/responses, with four new
// frame kinds carrying a per-connection stream ID:
//
//	open   (0xB3, client→server): uvarint streamID | 1B method-prefix
//	       index | uvarint suffix len + suffix | uvarint auth len + auth |
//	       uvarint initial credit | 1B payload shape | payload
//	data   (0xB4, server→client): uvarint streamID | 1B payload shape |
//	       payload
//	credit (0xB5, client→server): uvarint streamID | uvarint n
//	close  (0xB6, both ways):     uvarint streamID | 1B status
//	       (0 ok, 1 error) | error message (rest)
//
// Flow control is credit-based and strictly per stream: the server may
// have at most `credit` unacknowledged data frames outstanding, where
// credit is granted by the client at open time and replenished as it
// consumes. A server-side producer that finds the window empty gets
// ErrNoCredit back immediately — it never parks — so one stalled
// subscriber cannot block its publisher or sibling streams on the same
// connection. Bytes in flight are bounded by the sum of open windows,
// which keeps a stalled peer's TCP backpressure from wedging the shared
// connection writer for longer than one window.
//
// Streams exist only on binary connections: an endpoint opens a stream
// only after the peer's preamble proved it speaks the framed protocol,
// so JSON-only peers never see a stream frame.
package srpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sensorcer/internal/wire"
)

const (
	// frameStreamOpen..frameStreamClose tag the stream frame kinds; like
	// the request/response tags they sit outside the ASCII range JSON
	// frames start with.
	frameStreamOpen   byte = 0xB3
	frameStreamData   byte = 0xB4
	frameStreamCredit byte = 0xB5
	frameStreamClose  byte = 0xB6
)

// ErrNoCredit is returned by ServerStream.TrySend when the subscriber's
// credit window is exhausted. The caller decides what to do with the
// undelivered payload (the subscription plane conflates); the send never
// blocks.
var ErrNoCredit = errors.New("srpc: stream credit exhausted")

// ErrStreamClosed is returned by sends and receives on a stream that was
// closed by either end.
var ErrStreamClosed = errors.New("srpc: stream closed")

// ErrStreamsNeedBinary is returned by OpenStream when the peer never
// announced binary capability — streams have no JSON fallback.
var ErrStreamsNeedBinary = errors.New("srpc: streams require a binary-negotiated connection")

// ErrStreamOverrun closes a client stream whose peer sent more data
// frames than the granted credit allows — a protocol violation.
var ErrStreamOverrun = errors.New("srpc: peer overran the stream credit window")

// StreamHandler serves one opened stream: params arrive like request
// params (decoded into P), and st stays valid until the stream closes.
// A non-nil error rejects the open — the client sees it as the stream
// error. On success the handler's owner keeps st and pushes data frames
// with TrySend until either side closes.
type streamHandlerFunc func(p binPayload, st *ServerStream) error

// HandleStreamFunc registers a typed stream-open handler: JSON params
// unmarshal into P, binary fast-path payloads decode through P's
// BinaryUnmarshaler. The handler runs on its own goroutine per open.
func HandleStreamFunc[P any](s *Server, method string, fn func(P, *ServerStream) error) {
	s.mu.Lock()
	if s.streamHandlers == nil {
		s.streamHandlers = make(map[string]streamHandlerFunc)
	}
	s.streamHandlers[method] = func(p binPayload, st *ServerStream) error {
		var v P
		if p.shape != ShapeJSON {
			u, ok := any(&v).(BinaryUnmarshaler)
			if !ok {
				return fmt.Errorf("srpc: stream method %s has no binary decoder for payload shape %#x", method, p.shape)
			}
			if err := u.UnmarshalSrpc(p.shape, p.data); err != nil {
				return fmt.Errorf("srpc: bad stream params for %s: %w", method, err)
			}
		} else if len(p.data) > 0 {
			if err := json.Unmarshal(p.data, &v); err != nil {
				return fmt.Errorf("srpc: bad stream params for %s: %w", method, err)
			}
		}
		return fn(v, st)
	}
	s.mu.Unlock()
}

// ServerStream is the server half of one multiplexed stream. Safe for
// one producer goroutine; TrySend never blocks on the subscriber.
type ServerStream struct {
	id uint64
	cw *connWriter

	mu     sync.Mutex
	credit uint64
	closed bool
	// ready is signaled (capacity 1) whenever credit arrives, so a
	// producer that saw ErrNoCredit can park on Ready() — on its own
	// select, never inside the send.
	ready chan struct{}
	// done closes when the stream is finished from either side.
	done chan struct{}
}

func newServerStream(id uint64, cw *connWriter, credit uint64) *ServerStream {
	return &ServerStream{
		id:     id,
		cw:     cw,
		credit: credit,
		ready:  make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

// Credit reports the current send window.
func (st *ServerStream) Credit() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.credit
}

// Ready is signaled each time the subscriber grants credit. Producers
// select on it (alongside their own cancellation) after ErrNoCredit.
func (st *ServerStream) Ready() <-chan struct{} { return st.ready }

// Done closes when the stream ends — the client closed it, the server
// closed it, or the connection dropped. Producers must stop sending and
// release the stream.
func (st *ServerStream) Done() <-chan struct{} { return st.done }

// TrySend pushes one data frame if the credit window allows, consuming
// one credit. It returns ErrNoCredit with the window empty and
// ErrStreamClosed after either side closed — it never blocks on the
// subscriber's progress.
func (st *ServerStream) TrySend(payload any) error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return ErrStreamClosed
	}
	if st.credit == 0 {
		st.mu.Unlock()
		return ErrNoCredit
	}
	st.credit--
	st.mu.Unlock()

	bm, _ := payload.(BinaryMarshaler)
	var jsonPayload []byte
	if bm == nil && payload != nil {
		jp, err := json.Marshal(payload)
		if err != nil {
			st.refund()
			return fmt.Errorf("srpc: marshalling stream payload: %w", err)
		}
		jsonPayload = jp
	}
	buf := getBuf()
	b := wire.AppendUvarint(beginFrame(*buf), st.id)
	var err error
	if bm != nil {
		b = append(b, bm.SrpcShape())
		b, err = bm.AppendSrpc(b)
	} else {
		b = append(b, ShapeJSON)
		b = append(b, jsonPayload...)
	}
	if err != nil {
		*buf = b
		putBuf(buf)
		st.refund()
		return fmt.Errorf("srpc: marshalling stream payload: %w", err)
	}
	*buf = b
	st.cw.writeFrameLazy(finishFrame(b, frameStreamData))
	putBuf(buf)
	return nil
}

// refund returns one consumed credit after a failed encode.
func (st *ServerStream) refund() {
	st.mu.Lock()
	st.credit++
	st.mu.Unlock()
}

// grant adds n credits and wakes a parked producer.
func (st *ServerStream) grant(n uint64) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.credit += n
	st.mu.Unlock()
	select {
	case st.ready <- struct{}{}:
	default:
	}
}

// Close ends the stream from the server side, notifying the client (err
// nil = orderly end, non-nil = stream error). Idempotent; later closes
// and closes after a client close are no-ops.
func (st *ServerStream) Close(err error) {
	if !st.finish() {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	buf := getBuf()
	b := appendStreamClose(beginFrame(*buf), st.id, msg)
	*buf = b
	st.cw.writeFrame(finishFrame(b, frameStreamClose))
	putBuf(buf)
}

// finish transitions to closed exactly once, signalling Done and Ready
// (so a parked producer wakes to observe the closure).
func (st *ServerStream) finish() bool {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return false
	}
	st.closed = true
	st.mu.Unlock()
	close(st.done)
	select {
	case st.ready <- struct{}{}:
	default:
	}
	return true
}

// closeRemote tears the stream down without writing (client closed it,
// or the connection died).
func (st *ServerStream) closeRemote() { st.finish() }

// --- stream frame bodies ------------------------------------------------

// appendStreamOpen encodes an open body after beginFrame.
func appendStreamOpen(buf []byte, id uint64, method, auth string, credit uint64, params BinaryMarshaler, jsonParams []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, id)
	idx, suffix := splitMethod(method)
	buf = append(buf, idx)
	buf = wire.AppendString(buf, suffix)
	buf = wire.AppendString(buf, auth)
	buf = wire.AppendUvarint(buf, credit)
	if params != nil {
		buf = append(buf, params.SrpcShape())
		return params.AppendSrpc(buf)
	}
	buf = append(buf, ShapeJSON)
	return append(buf, jsonParams...), nil
}

// binStreamOpen is a decoded open body; method aliases the scratch
// buffer, auth and payload alias the frame body.
type binStreamOpen struct {
	id      uint64
	method  []byte
	auth    []byte
	credit  uint64
	payload binPayload
}

func decodeStreamOpen(body, scratch []byte) (op binStreamOpen, scratchOut []byte, ok bool) {
	scratchOut = scratch
	id, rest, ok := wire.ConsumeUvarint(body)
	if !ok || len(rest) < 1 {
		return binStreamOpen{}, scratchOut, false
	}
	idx := rest[0]
	suffix, rest, ok := wire.ConsumeBytes(rest[1:])
	if !ok {
		return binStreamOpen{}, scratchOut, false
	}
	method, ok := appendMethod(scratch[:0], idx, suffix)
	scratchOut = method
	if !ok {
		return binStreamOpen{}, scratchOut, false
	}
	auth, rest, ok := wire.ConsumeBytes(rest)
	if !ok {
		return binStreamOpen{}, scratchOut, false
	}
	credit, rest, ok := wire.ConsumeUvarint(rest)
	if !ok || len(rest) < 1 {
		return binStreamOpen{}, scratchOut, false
	}
	return binStreamOpen{
		id:      id,
		method:  method,
		auth:    auth,
		credit:  credit,
		payload: binPayload{shape: rest[0], data: rest[1:]},
	}, scratchOut, true
}

// binStreamData is a decoded data body; payload aliases the frame body.
type binStreamData struct {
	id      uint64
	payload binPayload
}

func decodeStreamData(body []byte) (binStreamData, bool) {
	id, rest, ok := wire.ConsumeUvarint(body)
	if !ok || len(rest) < 1 {
		return binStreamData{}, false
	}
	return binStreamData{id: id, payload: binPayload{shape: rest[0], data: rest[1:]}}, true
}

func appendStreamCredit(buf []byte, id, n uint64) []byte {
	return wire.AppendUvarint(wire.AppendUvarint(buf, id), n)
}

func decodeStreamCredit(body []byte) (id, n uint64, ok bool) {
	id, rest, ok := wire.ConsumeUvarint(body)
	if !ok {
		return 0, 0, false
	}
	n, rest, ok = wire.ConsumeUvarint(rest)
	if !ok || len(rest) != 0 {
		return 0, 0, false
	}
	return id, n, true
}

func appendStreamClose(buf []byte, id uint64, errMsg string) []byte {
	buf = wire.AppendUvarint(buf, id)
	if errMsg != "" {
		buf = append(buf, 1)
		return append(buf, errMsg...)
	}
	return append(buf, 0)
}

// binStreamClose is a decoded close body; errMsg aliases the frame body.
type binStreamClose struct {
	id     uint64
	isErr  bool
	errMsg []byte
}

func decodeStreamClose(body []byte) (binStreamClose, bool) {
	id, rest, ok := wire.ConsumeUvarint(body)
	if !ok || len(rest) < 1 {
		return binStreamClose{}, false
	}
	return binStreamClose{id: id, isErr: rest[0] == 1, errMsg: rest[1:]}, true
}

// --- server connection plumbing -----------------------------------------

// connStreams tracks the live server streams of one connection.
type connStreams struct {
	mu      sync.Mutex
	streams map[uint64]*ServerStream
}

func (cs *connStreams) add(st *ServerStream) {
	cs.mu.Lock()
	if cs.streams == nil {
		cs.streams = make(map[uint64]*ServerStream)
	}
	cs.streams[st.id] = st
	cs.mu.Unlock()
}

func (cs *connStreams) get(id uint64) *ServerStream {
	cs.mu.Lock()
	st := cs.streams[id]
	cs.mu.Unlock()
	return st
}

func (cs *connStreams) remove(id uint64) *ServerStream {
	cs.mu.Lock()
	st := cs.streams[id]
	delete(cs.streams, id)
	cs.mu.Unlock()
	return st
}

// closeAll tears every stream down (connection gone).
func (cs *connStreams) closeAll() {
	cs.mu.Lock()
	streams := cs.streams
	cs.streams = nil
	cs.mu.Unlock()
	for _, st := range streams {
		st.closeRemote()
	}
}

// serveStreamOpen dispatches one decoded open frame: resolve the stream
// handler, check auth, run the handler on its own goroutine. The open
// frame's payload aliases buf, which the goroutine owns and returns.
func (s *Server) serveStreamOpen(cw *connWriter, cs *connStreams, op binStreamOpen, buf *[]byte) {
	s.mu.RLock()
	h, ok := s.streamHandlers[string(op.method)]
	token := s.token
	s.mu.RUnlock()
	errMsg := ""
	if token != "" && !authEqual(op.auth, token) {
		errMsg = "srpc: authentication failed"
	} else if !ok {
		errMsg = "srpc: unknown stream method " + string(op.method)
	}
	st := newServerStream(op.id, cw, op.credit)
	if errMsg == "" {
		cs.add(st)
	}
	s.wg.Add(1)
	go func(payload binPayload, buf *[]byte) {
		defer s.wg.Done()
		if errMsg != "" {
			putBuf(buf)
			st.Close(errors.New(errMsg))
			return
		}
		err := h(payload, st)
		putBuf(buf)
		if err != nil {
			cs.remove(st.id)
			st.Close(err)
		}
	}(op.payload, buf)
}

// --- client side --------------------------------------------------------

// streamMsg is what the read loop delivers to a ClientStream: a pooled
// frame buffer the payload aliases, or a terminal error.
type streamMsg struct {
	payload binPayload
	buf     *[]byte
	err     error
}

// ClientStream is the client half of one multiplexed stream: Recv
// returns server-pushed payloads in order, granting credit back to the
// server as the consumer keeps up.
type ClientStream struct {
	c      *Client
	id     uint64
	window uint64
	msgs   chan streamMsg

	mu       sync.Mutex
	consumed uint64
	closed   bool
	err      error
}

// DefaultStreamWindow is the initial credit OpenStream grants when the
// caller passes 0.
const DefaultStreamWindow = 32

// OpenStream opens a multiplexed stream for method with the given
// params. window is the credit window — the maximum number of data
// frames the server may have in flight (0 = DefaultStreamWindow). Open
// errors the server reports (unknown method, rejected subscription)
// surface on the first Recv.
func (c *Client) OpenStream(method string, params any, window uint64) (*ClientStream, error) {
	if window == 0 {
		window = DefaultStreamWindow
	}
	if c.codec == CodecJSON {
		return nil, ErrStreamsNeedBinary
	}
	// Wait for the peer's preamble: nothing framed may be sent at a peer
	// that has not proved it reads frames.
	timer := c.clock.NewTimer(c.timeout)
	select {
	case <-c.binReady:
		timer.Stop()
	case <-c.done:
		timer.Stop()
		return nil, ErrConnClosed
	case <-timer.C():
		return nil, ErrStreamsNeedBinary
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.nextStreamID++
	st := &ClientStream{
		c:      c,
		id:     c.nextStreamID,
		window: window,
		// Headroom past the window tolerates frames already in flight
		// when a grant raced out; a peer past it is violating the
		// protocol and the stream closes with ErrStreamOverrun.
		msgs: make(chan streamMsg, window+4),
	}
	token := c.token
	if c.streams == nil {
		c.streams = make(map[uint64]*ClientStream)
	}
	c.streams[st.id] = st
	c.mu.Unlock()

	bm, _ := params.(BinaryMarshaler)
	var jsonParams []byte
	if bm == nil && params != nil {
		jp, err := json.Marshal(params)
		if err != nil {
			c.dropStream(st.id)
			return nil, fmt.Errorf("srpc: marshalling stream params: %w", err)
		}
		jsonParams = jp
	}
	fbuf := getBuf()
	b, err := appendStreamOpen(beginFrame(*fbuf), st.id, method, token, window, bm, jsonParams)
	if err != nil {
		putBuf(fbuf)
		c.dropStream(st.id)
		return nil, fmt.Errorf("srpc: marshalling stream params: %w", err)
	}
	*fbuf = b
	frame := finishFrame(b, frameStreamOpen)
	if _, err := c.conn.Write(frame); err != nil {
		putBuf(fbuf)
		c.dropStream(st.id)
		return nil, fmt.Errorf("srpc: opening stream: %w", err)
	}
	putBuf(fbuf)
	return st, nil
}

// dropStream forgets a stream without signalling it.
func (c *Client) dropStream(id uint64) {
	c.mu.Lock()
	delete(c.streams, id)
	c.mu.Unlock()
}

// Recv waits for the next data frame and decodes it into out (a
// BinaryUnmarshaler for fast-path shapes, any JSON target otherwise; nil
// discards). It returns io.EOF after an orderly server close, a
// RemoteError for a server-reported stream error, and ErrConnClosed when
// the connection died. timeout 0 means wait indefinitely — streams are
// long-lived and silence is legal.
func (st *ClientStream) Recv(out any, timeout time.Duration) error {
	if timeout <= 0 {
		// Plain receive: the no-timeout wait skips the select machinery —
		// worth it at fan-out scale, where every subscriber sits here for
		// every update.
		msg, ok := <-st.msgs
		return st.consume(msg, ok, out)
	}
	timer := st.c.clock.NewTimer(timeout)
	defer timer.Stop()
	select {
	case msg, ok := <-st.msgs:
		return st.consume(msg, ok, out)
	case <-timer.C():
		return fmt.Errorf("%w: stream recv after %v", ErrTimeout, timeout)
	}
}

// consume handles one received message (or the channel close).
func (st *ClientStream) consume(msg streamMsg, ok bool, out any) error {
	if !ok {
		return st.finalErr()
	}
	if err := st.decodeMsg(msg, out); err != nil {
		return err
	}
	st.maybeGrant()
	return nil
}

// decodeMsg materializes one delivered frame, returning its pooled
// buffer.
func (st *ClientStream) decodeMsg(msg streamMsg, out any) error {
	if msg.err != nil {
		return msg.err
	}
	defer putBuf(msg.buf)
	p := msg.payload
	if out == nil {
		return nil
	}
	if p.shape != ShapeJSON {
		u, ok := out.(BinaryUnmarshaler)
		if !ok {
			return fmt.Errorf("srpc: stream payload has shape %#x but %T has no binary decoder", p.shape, out)
		}
		if err := u.UnmarshalSrpc(p.shape, p.data); err != nil {
			return fmt.Errorf("srpc: unmarshalling stream payload: %w", err)
		}
		return nil
	}
	if len(p.data) > 0 {
		if err := json.Unmarshal(p.data, out); err != nil {
			return fmt.Errorf("srpc: unmarshalling stream payload: %w", err)
		}
	}
	return nil
}

// maybeGrant replenishes the server's window once half of it has been
// consumed — batched so a busy stream pays one credit frame per
// window/2 data frames, not one per frame.
func (st *ClientStream) maybeGrant() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.consumed++
	if st.consumed < (st.window+1)/2 {
		st.mu.Unlock()
		return
	}
	n := st.consumed
	st.consumed = 0
	st.mu.Unlock()

	buf := getBuf()
	b := appendStreamCredit(beginFrame(*buf), st.id, n)
	*buf = b
	frame := finishFrame(b, frameStreamCredit)
	_, _ = st.c.conn.Write(frame)
	putBuf(buf)
}

// finalErr reports why the stream ended.
func (st *ClientStream) finalErr() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.err != nil {
		return st.err
	}
	return io.EOF
}

// Close ends the stream from the client side. In-flight data frames are
// discarded; the server observes the close and stops producing.
func (st *ClientStream) Close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	if st.err == nil {
		st.err = ErrStreamClosed
	}
	st.mu.Unlock()
	st.c.dropStream(st.id)
	buf := getBuf()
	b := appendStreamClose(beginFrame(*buf), st.id, "")
	*buf = b
	frame := finishFrame(b, frameStreamClose)
	_, _ = st.c.conn.Write(frame)
	putBuf(buf)
	st.drain()
}

// drain releases pooled buffers still queued after a close.
func (st *ClientStream) drain() {
	for {
		select {
		case msg, ok := <-st.msgs:
			if !ok {
				return
			}
			if msg.buf != nil {
				putBuf(msg.buf)
			}
		default:
			return
		}
	}
}

// deliverData routes one data frame to its stream; ownership of buf
// transfers to the stream's channel. Called from the read loop only.
func (c *Client) deliverData(d binStreamData, buf *[]byte) {
	c.mu.Lock()
	st := c.streams[d.id]
	c.mu.Unlock()
	if st == nil {
		putBuf(buf)
		return
	}
	select {
	case st.msgs <- streamMsg{payload: d.payload, buf: buf}:
	default:
		// The peer shipped more frames than it had credit for.
		putBuf(buf)
		c.finishStream(d.id, ErrStreamOverrun)
	}
}

// finishStream ends a client stream with err (nil = orderly close).
// Called from the read loop (the only msgs sender), so closing the
// channel is safe.
func (c *Client) finishStream(id uint64, err error) {
	c.mu.Lock()
	st := c.streams[id]
	delete(c.streams, id)
	c.mu.Unlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	st.err = err
	st.mu.Unlock()
	close(st.msgs)
}

// failStreams ends every open stream when the connection dies. Runs on
// the read loop's exit path — after the loop stopped sending.
func (c *Client) failStreams(err error) {
	c.mu.Lock()
	streams := c.streams
	c.streams = nil
	c.mu.Unlock()
	for _, st := range streams {
		st.mu.Lock()
		if st.closed {
			st.mu.Unlock()
			continue
		}
		st.closed = true
		st.err = fmt.Errorf("%w: %v", ErrConnClosed, err)
		st.mu.Unlock()
		close(st.msgs)
	}
}
