package srpc

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRegenerateFuzzCorpus rewrites the checked-in seed corpus under
// testdata/fuzz from the same builders FuzzDecodeFrame seeds with, so
// the corpus files and the in-code seeds can't drift. Run it with
//
//	SRPC_REGEN_CORPUS=1 go test ./internal/srpc -run TestRegenerateFuzzCorpus
//
// after changing the frame format; it is a no-op otherwise.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("SRPC_REGEN_CORPUS") == "" {
		t.Skip("set SRPC_REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	corpora := map[string][][]byte{
		"FuzzDecodeFrame":       fuzzSeedFrames(),
		"FuzzDecodeStreamFrame": fuzzStreamSeedFrames(),
	}
	for target, seeds := range corpora {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
