package srpc

import (
	"bufio"
	"bytes"
	"testing"

	"sensorcer/internal/wire"
)

// fuzzStreamSeedFrames builds representative stream-frame inputs for the
// seed corpus: valid open/data/credit/close frames, truncations at every
// interesting boundary, hostile stream IDs and credit values, and junk
// around the frame tags. The same builders feed f.Add so the checked-in
// corpus under testdata/fuzz and the in-code seeds stay consistent.
func fuzzStreamSeedFrames() [][]byte {
	var seeds [][]byte
	frame := func(kind byte, body []byte) []byte {
		b := append(beginFrame(nil), body...)
		return append([]byte(nil), finishFrame(b, kind)...)
	}
	// A valid open with a dictionary-prefixed method and JSON params.
	ob, _ := appendStreamOpen(nil, 1, "subscribe.stream", "tok", 32, nil, []byte(`{"token":"t"}`))
	open := frame(frameStreamOpen, ob)
	seeds = append(seeds, open)
	// An open with an undictionaried method and no params.
	ob2, _ := appendStreamOpen(nil, 7, "custom.feed", "", 4, nil, nil)
	seeds = append(seeds, frame(frameStreamOpen, ob2))
	// Data frames: JSON payload and an opaque binary shape.
	db := wire.AppendUvarint(nil, 1)
	db = append(db, ShapeJSON)
	db = append(db, []byte(`{"seq":9}`)...)
	seeds = append(seeds, frame(frameStreamData, db))
	db2 := wire.AppendUvarint(nil, 1)
	db2 = append(db2, 48) // subscribe.ShapeUpdate
	db2 = append(db2, 0x01, 0x00, 0x01, 0xFF)
	seeds = append(seeds, frame(frameStreamData, db2))
	// Credit, orderly close, and error close.
	seeds = append(seeds, frame(frameStreamCredit, appendStreamCredit(nil, 1, 16)))
	seeds = append(seeds, frame(frameStreamClose, appendStreamClose(nil, 1, "")))
	seeds = append(seeds, frame(frameStreamClose, appendStreamClose(nil, 1, "subscriber rejected")))
	// Truncations of the valid open at every interesting boundary.
	for _, n := range []int{1, 2, 3, len(open) / 2, len(open) - 1} {
		if n < len(open) {
			seeds = append(seeds, append([]byte(nil), open[:n]...))
		}
	}
	// Hostile bodies: empty, credit with trailing junk, overlong uvarint
	// stream ID, max stream ID, and an open with an out-of-range method
	// prefix index.
	seeds = append(seeds, frame(frameStreamData, nil))
	seeds = append(seeds, frame(frameStreamCredit, append(appendStreamCredit(nil, 1, 2), 0xAA)))
	seeds = append(seeds, frame(frameStreamClose, []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02, 0x00}))
	seeds = append(seeds, frame(frameStreamCredit, appendStreamCredit(nil, ^uint64(0), ^uint64(0))))
	hostileOpen := wire.AppendUvarint(nil, 3)
	hostileOpen = append(hostileOpen, 0xFF)
	hostileOpen = wire.AppendString(hostileOpen, "x")
	hostileOpen = wire.AppendString(hostileOpen, "")
	hostileOpen = wire.AppendUvarint(hostileOpen, 8)
	hostileOpen = append(hostileOpen, ShapeJSON)
	seeds = append(seeds, frame(frameStreamOpen, hostileOpen))
	// Interleaved traffic: open, data, credit, close back to back.
	var mixed []byte
	mixed = append(mixed, open...)
	mixed = append(mixed, frame(frameStreamData, db)...)
	mixed = append(mixed, frame(frameStreamCredit, appendStreamCredit(nil, 1, 1))...)
	mixed = append(mixed, frame(frameStreamClose, appendStreamClose(nil, 1, ""))...)
	seeds = append(seeds, mixed)
	return seeds
}

// FuzzDecodeStreamFrame drives raw bytes through the stream-frame read
// path a connection runs: peek the tag, read the length-prefixed body,
// decode by kind. Properties: never panic, never allocate more than the
// bytes actually received (plus one read chunk), and every successfully
// decoded credit frame re-encodes to a frame that decodes to the same
// values.
func FuzzDecodeStreamFrame(f *testing.F) {
	for _, s := range fuzzStreamSeedFrames() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		var scratch []byte
		for {
			first, err := r.Peek(1)
			if err != nil {
				return
			}
			switch first[0] {
			case frameStreamOpen, frameStreamData, frameStreamCredit, frameStreamClose:
				kind := first[0]
				_, _ = r.Discard(1)
				var body []byte
				if err := readFrameBody(r, &body); err != nil {
					return
				}
				if cap(body) > len(data)+(64<<10) {
					t.Fatalf("claimed length allocated %d bytes for %d input bytes", cap(body), len(data))
				}
				switch kind {
				case frameStreamOpen:
					op, sc, ok := decodeStreamOpen(body, scratch)
					scratch = sc
					if ok && len(op.method) > len(body)+len(methodPrefixes[len(methodPrefixes)-1])+32 {
						t.Fatalf("method longer than any encodable name: %d", len(op.method))
					}
				case frameStreamData:
					_, _ = decodeStreamData(body)
				case frameStreamCredit:
					id, n, ok := decodeStreamCredit(body)
					if ok {
						re := appendStreamCredit(nil, id, n)
						id2, n2, ok2 := decodeStreamCredit(re)
						if !ok2 || id2 != id || n2 != n {
							t.Fatalf("credit (%d,%d) re-decode = (%d,%d,%v)", id, n, id2, n2, ok2)
						}
					}
				case frameStreamClose:
					cl, ok := decodeStreamClose(body)
					if ok && len(cl.errMsg) > len(body) {
						t.Fatalf("close message longer than the body: %d > %d", len(cl.errMsg), len(body))
					}
				}
			case frameRequest, frameResponse:
				_, _ = r.Discard(1)
				var body []byte
				if err := readFrameBody(r, &body); err != nil {
					return
				}
			default:
				if _, err := r.ReadBytes('\n'); err != nil {
					return
				}
			}
		}
	})
}
