// Package srpc is the small RPC transport sensorcer uses for
// cross-process deployments (cmd/sensorcerd): length-prefixed binary
// frames (codec.go) with a newline-delimited JSON fallback, integer
// correlation ids, concurrent calls multiplexed over one connection.
// The codec is negotiated per connection — see codec.go for the frame
// layout and the preamble handshake — so binary endpoints interoperate
// with JSON-only peers. In-process federations never touch this package —
// proxies registered in the lookup service are the provider objects
// themselves — but the remote sensor browser and remote registrars are
// srpc clients. Java dynamic proxies have no Go equivalent, so remote
// interfaces get small hand-written stubs on top of Client.Call.
package srpc

import (
	"bufio"
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/faults"
)

// FaultSiteSend is the injection-site suffix consulted before each client
// request: errors fail the call, drops lose it in flight (the call then
// waits out its deadline exactly like real message loss).
const FaultSiteSend = "/send"

// request is one JSON call frame.
type request struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
	// Auth carries the shared secret when the server requires one — the
	// (deliberately simple) stand-in for the Jini security services the
	// paper inherits (§VIII). Compared in constant time.
	Auth string `json:"auth,omitempty"`
}

// response is one JSON reply frame.
type response struct {
	ID     uint64          `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// Handler serves one method: params arrive as raw JSON, the return value
// is marshalled as the result. Raw handlers only see the generic codec;
// binary fast-path params are rejected before they reach one. The raw
// bytes may alias a pooled frame buffer — valid only for the duration of
// the call; retain a copy, not the slice.
type Handler func(params json.RawMessage) (any, error)

// handlerFunc is the internal, codec-agnostic handler shape: the payload
// carries its shape tag, and its data alias the connection's frame
// buffer for the duration of the call.
type handlerFunc func(p binPayload) (any, error)

// Server dispatches srpc requests to registered handlers.
type Server struct {
	mu             sync.RWMutex
	handlers       map[string]handlerFunc
	streamHandlers map[string]streamHandlerFunc
	listener       net.Listener
	conns          map[net.Conn]bool
	token          string
	codec          Codec
	clock          clockwork.Clock
	closed         bool
	wg             sync.WaitGroup
}

// SetClock injects a clock (tests); the default is the real one. Set
// before Listen.
func (s *Server) SetClock(c clockwork.Clock) {
	s.mu.Lock()
	s.clock = c
	s.mu.Unlock()
}

// SetToken requires every request to carry the shared secret. Set before
// Listen. An empty token disables authentication (the default).
func (s *Server) SetToken(token string) {
	s.mu.Lock()
	s.token = token
	s.mu.Unlock()
}

// SetCodec selects the wire codec for subsequently accepted connections
// (default CodecBinary, which still serves JSON peers). Set before
// Listen.
func (s *Server) SetCodec(c Codec) {
	s.mu.Lock()
	s.codec = c
	s.mu.Unlock()
}

// NewServer creates a server with no handlers.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]handlerFunc),
		conns:    make(map[net.Conn]bool),
		clock:    clockwork.Real(),
	}
}

// Handle registers a raw JSON method handler.
func (s *Server) Handle(method string, h Handler) {
	s.handle(method, func(p binPayload) (any, error) {
		if p.shape != ShapeJSON {
			return nil, fmt.Errorf("srpc: method %s accepts only JSON params (got shape %#x)", method, p.shape)
		}
		return h(json.RawMessage(p.data))
	})
}

func (s *Server) handle(method string, h handlerFunc) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// HandleFunc registers a typed handler: JSON params unmarshal into P, and
// binary fast-path payloads decode through P's BinaryUnmarshaler (a
// shape-tagged payload for a P without one is an error back to the
// caller). Decoded params own their memory — P may be retained freely.
func HandleFunc[P any](s *Server, method string, fn func(P) (any, error)) {
	s.handle(method, func(p binPayload) (any, error) {
		var v P
		if p.shape != ShapeJSON {
			u, ok := any(&v).(BinaryUnmarshaler)
			if !ok {
				return nil, fmt.Errorf("srpc: method %s has no binary decoder for payload shape %#x", method, p.shape)
			}
			if err := u.UnmarshalSrpc(p.shape, p.data); err != nil {
				return nil, fmt.Errorf("srpc: bad params for %s: %w", method, err)
			}
		} else if len(p.data) > 0 {
			if err := json.Unmarshal(p.data, &v); err != nil {
				return nil, fmt.Errorf("srpc: bad params for %s: %w", method, err)
			}
		}
		return fn(v)
	})
}

// Listen binds addr ("127.0.0.1:0" for an ephemeral port) and serves until
// Close.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("srpc: server closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound address (empty before Listen).
func (s *Server) Addr() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// connWriter serializes every reply — JSON or binary — onto one
// connection. Writers never touch the socket: they append whole frames
// to a pending buffer under a short lock and nudge the flusher
// goroutine, which swaps the buffer out and writes it with a single
// syscall. Under stream fan-out the frames that accumulate while one
// write syscall is in flight all leave in the next one, so thousands
// of small data frames cost a handful of writes — and a peer whose
// socket has stalled never blocks a producer. The pending buffer stays
// bounded without any explicit cap: stream data frames are credit-
// gated by the peer's open windows and responses are matched to
// in-flight requests, which is the same bound TCP backpressure
// enforced when writers flushed inline.
type connWriter struct {
	conn  net.Conn
	clock clockwork.Clock
	mu    sync.Mutex
	// pending holds complete frames not yet handed to the kernel.
	pending []byte
	// err is the first socket write error; once set, frames are dropped
	// (the read loop tears the connection down independently).
	err    error
	kick   chan struct{} // cap 1: wakes the flusher now
	lazy   chan struct{} // cap 1: wakes it after a short gather window
	done   chan struct{} // closed by stop: flusher drains and exits
	exited chan struct{} // closed by the flusher on return
}

func newConnWriter(conn net.Conn, clock clockwork.Clock) *connWriter {
	cw := &connWriter{
		conn:   conn,
		clock:  clock,
		kick:   make(chan struct{}, 1),
		lazy:   make(chan struct{}, 1),
		done:   make(chan struct{}),
		exited: make(chan struct{}),
	}
	go cw.flusher()
	return cw
}

// maxRetainedWriteBuf caps how much a connection's swap buffers keep
// after a burst; anything larger is released to the collector.
const maxRetainedWriteBuf = 1 << 20

// streamGatherWindow is how long the flusher lingers after a lazy kick
// before writing: during a fan-out burst the frames for this
// connection's other streams land inside the window and leave in the
// same syscall. It is latency added to a pushed sensor update — three
// orders of magnitude under any sensor cadence — and never delays a
// response on a stream-free connection, where only eager kicks occur.
const streamGatherWindow = 200 * time.Microsecond

func (cw *connWriter) flusher() {
	defer close(cw.exited)
	var spare []byte
	for {
		select {
		case <-cw.kick:
		case <-cw.lazy:
			// Gather: an eager kick (a response sharing the connection)
			// cuts the wait short.
			t := cw.clock.NewTimer(streamGatherWindow)
			select {
			case <-cw.kick:
			case <-t.C():
			case <-cw.done:
			}
			t.Stop()
		case <-cw.done:
			cw.flushOnce(&spare) // final drain before the conn closes
			return
		}
		cw.flushOnce(&spare)
	}
}

// flushOnce swaps the pending buffer against a flusher-owned spare and
// writes it outside the lock, so writers keep appending while the
// syscall is in flight.
func (cw *connWriter) flushOnce(spare *[]byte) {
	cw.mu.Lock()
	buf := cw.pending
	cw.pending = (*spare)[:0]
	cw.mu.Unlock()
	if len(buf) > 0 {
		if _, err := cw.conn.Write(buf); err != nil {
			cw.mu.Lock()
			if cw.err == nil {
				cw.err = err
			}
			cw.mu.Unlock()
		}
	}
	if cap(buf) > maxRetainedWriteBuf {
		buf = nil
	}
	*spare = buf[:0]
}

// stop drains whatever is pending and shuts the flusher down; the
// caller closes the conn only after stop returns. Late writers (handler
// goroutines finishing after the connection dropped) see the error and
// drop their frames.
func (cw *connWriter) stop() {
	close(cw.done)
	<-cw.exited
	cw.mu.Lock()
	if cw.err == nil {
		cw.err = net.ErrClosed
	}
	cw.mu.Unlock()
}

func (cw *connWriter) writeFrame(frame []byte) {
	cw.mu.Lock()
	if cw.err == nil {
		cw.pending = append(cw.pending, frame...)
	}
	cw.mu.Unlock()
	select {
	case cw.kick <- struct{}{}:
	default:
	}
}

// writeFrameLazy queues a frame that tolerates the gather window —
// stream data, where per-update latency is measured against sensor
// cadence, not request round-trips.
func (cw *connWriter) writeFrameLazy(frame []byte) {
	cw.mu.Lock()
	if cw.err == nil {
		cw.pending = append(cw.pending, frame...)
	}
	cw.mu.Unlock()
	select {
	case cw.lazy <- struct{}{}:
	default:
	}
}

func (cw *connWriter) writeJSON(resp response) {
	line, err := json.Marshal(resp)
	if err != nil {
		return
	}
	cw.writeFrame(append(line, '\n'))
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	s.mu.RLock()
	codec := s.codec
	clock := s.clock
	s.mu.RUnlock()
	cw := newConnWriter(conn, clock)
	defer cw.stop()
	if codec != CodecJSON {
		// Announce binary capability; a JSON-only client drops this as a
		// garbage line. Written through the flusher like everything else —
		// nothing else is queued yet, so it is the first bytes on the wire.
		cw.writeFrame(preamble[:])
	}
	reader := bufio.NewReader(conn)
	// streams tracks this connection's open server streams; whatever is
	// still open when the connection drops is torn down so producers
	// observe Done and release their subscriptions.
	streams := &connStreams{}
	defer streams.closeAll()
	// scratch backs reassembled method names across requests; the map
	// lookup over it never allocates.
	var scratch []byte
	for {
		first, err := reader.Peek(1)
		if err != nil {
			return
		}
		if isServerFrame(first[0]) && codec != CodecJSON {
			tag := first[0]
			_, _ = reader.Discard(1)
			buf := getBuf()
			if err := readFrameBody(reader, buf); err != nil {
				putBuf(buf)
				return // framing is broken; drop the connection
			}
			switch tag {
			case frameRequest:
				req, sc, ok := decodeRequest(*buf, scratch)
				scratch = sc
				if !ok {
					putBuf(buf)
					continue // malformed body; drop the frame like garbage JSON
				}
				h, errMsg := s.lookupHandler(req.method, req.auth)
				// Serve each request on its own goroutine so a slow handler
				// doesn't head-of-line-block the connection. The goroutine owns
				// the frame buffer (req.payload aliases it) and returns it to
				// the pool when the response is on the wire.
				s.wg.Add(1)
				go s.serveBinRequest(cw, h, errMsg, req.id, req.payload, buf)
			case frameStreamOpen:
				op, sc, ok := decodeStreamOpen(*buf, scratch)
				scratch = sc
				if !ok {
					putBuf(buf)
					continue
				}
				// The handler goroutine owns the frame buffer (the open
				// payload aliases it).
				s.serveStreamOpen(cw, streams, op, buf)
			case frameStreamCredit:
				if id, n, ok := decodeStreamCredit(*buf); ok {
					if st := streams.get(id); st != nil {
						st.grant(n)
					}
				}
				putBuf(buf)
			case frameStreamClose:
				if cl, ok := decodeStreamClose(*buf); ok {
					if st := streams.remove(cl.id); st != nil {
						st.closeRemote()
					}
				}
				putBuf(buf)
			default:
				putBuf(buf)
			}
			continue
		}
		line, err := reader.ReadBytes('\n')
		if err != nil {
			return
		}
		var req request
		if err := json.Unmarshal(line, &req); err != nil {
			continue // garbage frame (including the peer's preamble); drop
		}
		s.wg.Add(1)
		go func(req request) {
			defer s.wg.Done()
			resp := s.dispatch(req)
			cw.writeJSON(resp)
		}(req)
	}
}

// isServerFrame reports whether tag opens a binary frame kind a server
// accepts (requests and the client-originated stream kinds).
func isServerFrame(tag byte) bool {
	return tag == frameRequest || tag == frameStreamOpen ||
		tag == frameStreamCredit || tag == frameStreamClose
}

// authEqual compares a wire auth field against the configured token in
// constant time.
func authEqual(auth []byte, token string) bool {
	return subtle.ConstantTimeCompare(auth, []byte(token)) == 1
}

// lookupHandler resolves a method and checks auth. method and auth may
// alias per-connection buffers; nothing is retained.
func (s *Server) lookupHandler(method, auth []byte) (handlerFunc, string) {
	s.mu.RLock()
	h, ok := s.handlers[string(method)]
	token := s.token
	s.mu.RUnlock()
	if token != "" && !authEqual(auth, token) {
		return nil, "srpc: authentication failed"
	}
	if !ok {
		return nil, "srpc: unknown method " + string(method)
	}
	return h, ""
}

// serveBinRequest runs one binary-framed request to completion: handler,
// response encode (fast path or JSON fallback), single write. A response
// to a binary request is always binary — the peer proved it speaks it.
func (s *Server) serveBinRequest(cw *connWriter, h handlerFunc, errMsg string, id uint64, p binPayload, buf *[]byte) {
	defer s.wg.Done()
	var result any
	if errMsg == "" {
		var err error
		result, err = h(p)
		if err != nil {
			errMsg = err.Error()
		}
	}
	out := getBuf()
	full, frame, err := encodeResponseFrame(*out, id, errMsg, result)
	putBuf(buf) // the handler is done with the request payload
	if err != nil {
		full, frame, _ = encodeResponseFrame(full, id, "srpc: marshalling result: "+err.Error(), nil)
	}
	*out = full
	cw.writeFrame(frame)
	putBuf(out)
}

// encodeResponseFrame builds a complete binary response frame in buf,
// returning the (possibly regrown) buffer and the frame window into it.
func encodeResponseFrame(buf []byte, id uint64, errMsg string, result any) (full, frame []byte, err error) {
	b := beginFrame(buf)
	bm, _ := result.(BinaryMarshaler)
	var jsonResult []byte
	if errMsg == "" && bm == nil && result != nil {
		if jsonResult, err = json.Marshal(result); err != nil {
			return b, nil, err
		}
	}
	if b, err = appendResponse(b, id, errMsg, bm, jsonResult); err != nil {
		return b, nil, err
	}
	return b, finishFrame(b, frameResponse), nil
}

// dispatch serves one JSON request (the reply mirrors the request codec).
func (s *Server) dispatch(req request) response {
	h, errMsg := s.lookupHandler([]byte(req.Method), []byte(req.Auth))
	if errMsg != "" {
		return response{ID: req.ID, Error: errMsg}
	}
	result, err := h(binPayload{shape: ShapeJSON, data: req.Params})
	if err != nil {
		return response{ID: req.ID, Error: err.Error()}
	}
	raw, err := json.Marshal(result)
	if err != nil {
		return response{ID: req.ID, Error: "srpc: marshalling result: " + err.Error()}
	}
	return response{ID: req.ID, Result: raw}
}

// Close stops accepting and closes every open connection.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// RemoteError wraps a server-side failure string.
type RemoteError struct{ Message string }

// Error implements error.
func (e *RemoteError) Error() string { return e.Message }

// ErrClientClosed is returned by calls on an explicitly Closed client.
var ErrClientClosed = errors.New("srpc: client closed")

// ErrConnClosed is returned — promptly, not after the call timeout — by
// every call pending when the peer closes the connection mid-call, and by
// calls issued after the connection was lost. Distinct from
// ErrClientClosed so requestors can tell a dead provider (rebind to an
// equivalent one) from their own orderly shutdown.
var ErrConnClosed = errors.New("srpc: connection closed by peer")

// ErrTimeout is wrapped by per-call deadline expiries.
var ErrTimeout = errors.New("srpc: call timed out")

// callResult is what the read loop (or failAll) delivers to a waiter.
// Binary results carry the pooled frame buffer their slices alias; the
// waiter returns it to the pool (an abandoned one is left to the GC).
type callResult struct {
	resp   response
	bin    binResponse
	binBuf *[]byte
	err    error
}

// Client is a connection to an srpc server, safe for concurrent calls.
type Client struct {
	conn    net.Conn
	timeout time.Duration
	clock   clockwork.Clock
	codec   Codec
	// peerBinary flips once the peer's preamble arrives; from then on
	// requests go out as binary frames. Each frame reaches the wire as a
	// single conn.Write (which net serializes), so no encode mutex is
	// needed and concurrent callers never interleave frames.
	peerBinary atomic.Bool

	// binReady closes once the peer's preamble arrives — the gate
	// OpenStream waits behind, since streams have no JSON fallback.
	binReady chan struct{}

	mu      sync.Mutex
	token   string
	nextID  uint64
	pending map[uint64]chan callResult
	// streams are the open client streams keyed by stream id; the read
	// loop routes data/close frames to them.
	streams      map[uint64]*ClientStream
	nextStreamID uint64
	closed       bool
	// lost records that the connection died underneath us (vs an
	// explicit Close), so later calls fail with ErrConnClosed.
	lost bool
	done chan struct{}
	// inj, when set, injects faults at site "<site>/send" before each
	// request (chaos testing only; nil in production).
	inj     *faults.Injector
	injSite string
}

// Dial connects to an srpc server with the default binary-negotiating
// codec. timeout bounds each call (0 = 10s).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialCodec(addr, CodecBinary, timeout)
}

// DialCodec is Dial with an explicit codec — CodecJSON forces the legacy
// wire protocol for ablation and for probing old peers.
func DialCodec(addr string, codec Codec, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:     conn,
		timeout:  timeout,
		clock:    clockwork.Real(),
		codec:    codec,
		pending:  make(map[uint64]chan callResult),
		binReady: make(chan struct{}),
		done:     make(chan struct{}),
	}
	if codec != CodecJSON {
		// Announce binary capability; a JSON-only server drops this as a
		// garbage line.
		if _, err := conn.Write(preamble[:]); err != nil {
			conn.Close()
			return nil, err
		}
	}
	go c.readLoop()
	return c, nil
}

// SetToken attaches the shared secret to every subsequent call.
func (c *Client) SetToken(token string) {
	c.mu.Lock()
	c.token = token
	c.mu.Unlock()
}

// SetFaultInjector arms chaos hooks on this client: each call consults
// inj at site "<site>/send" — injected errors fail the call, drops lose
// the request in flight (the call then hits its deadline).
func (c *Client) SetFaultInjector(inj *faults.Injector, site string) {
	c.mu.Lock()
	c.inj = inj
	c.injSite = site
	c.mu.Unlock()
}

func (c *Client) readLoop() {
	defer close(c.done)
	reader := bufio.NewReader(c.conn)
	for {
		first, err := reader.Peek(1)
		if err != nil {
			c.failAll(err)
			return
		}
		if isClientFrame(first[0]) && c.codec != CodecJSON {
			tag := first[0]
			_, _ = reader.Discard(1)
			buf := getBuf()
			if err := readFrameBody(reader, buf); err != nil {
				putBuf(buf)
				c.failAll(err)
				return
			}
			switch tag {
			case frameResponse:
				resp, ok := decodeResponse(*buf)
				if !ok {
					putBuf(buf)
					continue // malformed body; drop the frame
				}
				c.deliver(resp.id, callResult{bin: resp, binBuf: buf})
			case frameStreamData:
				d, ok := decodeStreamData(*buf)
				if !ok {
					putBuf(buf)
					continue
				}
				// Ownership of buf transfers to the stream's queue.
				c.deliverData(d, buf)
			case frameStreamClose:
				if cl, ok := decodeStreamClose(*buf); ok {
					var err error
					if cl.isErr {
						err = &RemoteError{Message: string(cl.errMsg)}
					}
					c.finishStream(cl.id, err)
				}
				putBuf(buf)
			default:
				putBuf(buf)
			}
			continue
		}
		line, err := reader.ReadBytes('\n')
		if err != nil {
			c.failAll(err)
			return
		}
		if line[0] == preambleByte {
			if c.codec != CodecJSON && bytes.Equal(line, preamble[:]) {
				if c.peerBinary.CompareAndSwap(false, true) {
					close(c.binReady)
				}
			}
			continue
		}
		var resp response
		if err := json.Unmarshal(line, &resp); err != nil {
			continue
		}
		c.deliver(resp.ID, callResult{resp: resp})
	}
}

// deliver hands a result to the waiter registered for id; an abandoned
// binary result's frame buffer goes straight back to the pool.
func (c *Client) deliver(id uint64, res callResult) {
	c.mu.Lock()
	ch, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.mu.Unlock()
	if ok {
		ch <- res
	} else if res.binBuf != nil {
		putBuf(res.binBuf)
	}
}

// isClientFrame reports whether tag opens a binary frame kind a client
// accepts (responses and the server-originated stream kinds).
func isClientFrame(tag byte) bool {
	return tag == frameResponse || tag == frameStreamData || tag == frameStreamClose
}

// failAll runs when the read loop dies: every pending call and open
// stream fails fast with ErrConnClosed instead of waiting out its
// deadline.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	pending := c.pending
	c.pending = make(map[uint64]chan callResult)
	if !c.closed {
		c.lost = true
	}
	c.closed = true
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- callResult{err: fmt.Errorf("%w: %v", ErrConnClosed, err)}
	}
	c.failStreams(err)
}

// Call invokes method with params, unmarshalling the result into out
// (which may be nil to discard), bounded by the client's default timeout.
func (c *Client) Call(method string, params any, out any) error {
	return c.CallWithTimeout(method, params, out, 0)
}

// CallWithTimeout is Call with a per-call deadline override (0 = the
// client default) — the hook resilience.Policy uses to bound each attempt.
func (c *Client) CallWithTimeout(method string, params any, out any, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = c.timeout
	}
	c.mu.Lock()
	if c.closed {
		lost := c.lost
		c.mu.Unlock()
		if lost {
			return fmt.Errorf("%w: %s not sent", ErrConnClosed, method)
		}
		return ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	token := c.token
	inj, injSite := c.inj, c.injSite
	c.mu.Unlock()

	// Encode the whole frame before the call is registered: a marshalling
	// failure must not leave an orphaned pending-map entry behind (the
	// read loop would never resolve it, and failAll would signal a channel
	// nobody is listening on). Binary frames carry the id inside the
	// frame, so the id above is burnt on encode failure — ids only
	// correlate, a gap is harmless.
	var frame []byte
	var fbuf *[]byte
	if c.codec != CodecJSON && c.peerBinary.Load() {
		bm, _ := params.(BinaryMarshaler)
		var jsonParams []byte
		if bm == nil && params != nil {
			jp, err := json.Marshal(params)
			if err != nil {
				return fmt.Errorf("srpc: marshalling params: %w", err)
			}
			jsonParams = jp
		}
		fbuf = getBuf()
		b, err := appendRequest(beginFrame(*fbuf), id, method, token, bm, jsonParams)
		if err != nil {
			putBuf(fbuf)
			return fmt.Errorf("srpc: marshalling params: %w", err)
		}
		*fbuf = b
		frame = finishFrame(b, frameRequest)
	} else {
		var raw json.RawMessage
		if params != nil {
			b, err := json.Marshal(params)
			if err != nil {
				return fmt.Errorf("srpc: marshalling params: %w", err)
			}
			raw = b
		}
		b, err := json.Marshal(request{ID: id, Method: method, Params: raw, Auth: token})
		if err != nil {
			return fmt.Errorf("srpc: marshalling params: %w", err)
		}
		frame = append(b, '\n')
	}

	ch := make(chan callResult, 1)
	c.mu.Lock()
	if c.closed {
		lost := c.lost
		c.mu.Unlock()
		putBuf(fbuf)
		if lost {
			return fmt.Errorf("%w: %s not sent", ErrConnClosed, method)
		}
		return ErrClientClosed
	}
	c.pending[id] = ch
	c.mu.Unlock()

	dropped := false
	if inj != nil {
		if err := inj.Inject(injSite + FaultSiteSend); err != nil {
			c.abandon(id)
			putBuf(fbuf)
			return err
		}
		// A dropped request is never written to the wire; the call
		// waits out its deadline exactly as with real message loss.
		dropped = inj.Drop(injSite + FaultSiteSend)
	}
	if !dropped {
		// One conn.Write per frame: net serializes concurrent writes, so
		// frames from concurrent callers never interleave.
		_, err := c.conn.Write(frame)
		putBuf(fbuf)
		if err != nil {
			c.abandon(id)
			return fmt.Errorf("srpc: sending request: %w", err)
		}
	} else {
		putBuf(fbuf)
	}

	timer := c.clock.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return decodeResult(method, res, out)
	case <-timer.C():
		c.abandon(id)
		return fmt.Errorf("%w: %s after %v", ErrTimeout, method, timeout)
	}
}

// decodeResult materializes one delivered result into out, returning the
// binary frame buffer (if any) to the pool.
func decodeResult(method string, res callResult, out any) error {
	if res.err != nil {
		return res.err
	}
	if res.binBuf != nil {
		defer putBuf(res.binBuf)
		if res.bin.isErr {
			return &RemoteError{Message: string(res.bin.errMsg)}
		}
		p := res.bin.payload
		if out == nil {
			return nil
		}
		if p.shape != ShapeJSON {
			u, ok := out.(BinaryUnmarshaler)
			if !ok {
				return fmt.Errorf("srpc: result of %s has payload shape %#x but %T has no binary decoder", method, p.shape, out)
			}
			if err := u.UnmarshalSrpc(p.shape, p.data); err != nil {
				return fmt.Errorf("srpc: unmarshalling result: %w", err)
			}
			return nil
		}
		if len(p.data) > 0 {
			if err := json.Unmarshal(p.data, out); err != nil {
				return fmt.Errorf("srpc: unmarshalling result: %w", err)
			}
		}
		return nil
	}
	if res.resp.Error != "" {
		return &RemoteError{Message: res.resp.Error}
	}
	if out != nil && len(res.resp.Result) > 0 {
		if err := json.Unmarshal(res.resp.Result, out); err != nil {
			return fmt.Errorf("srpc: unmarshalling result: %w", err)
		}
	}
	return nil
}

func (c *Client) abandon(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.conn.Close()
	<-c.done
}
