// Package srpc is the small JSON-over-TCP RPC transport sensorcer uses for
// cross-process deployments (cmd/sensorcerd): newline-delimited JSON
// request/response frames with integer correlation ids, concurrent calls
// multiplexed over one connection. In-process federations never touch this
// package — proxies registered in the lookup service are the provider
// objects themselves — but the remote sensor browser and remote registrars
// are srpc clients. Java dynamic proxies have no Go equivalent, so remote
// interfaces get small hand-written stubs on top of Client.Call.
package srpc

import (
	"bufio"
	"bytes"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/faults"
)

// FaultSiteSend is the injection-site suffix consulted before each client
// request: errors fail the call, drops lose it in flight (the call then
// waits out its deadline exactly like real message loss).
const FaultSiteSend = "/send"

// request is one call frame.
type request struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
	// Auth carries the shared secret when the server requires one — the
	// (deliberately simple) stand-in for the Jini security services the
	// paper inherits (§VIII). Compared in constant time.
	Auth string `json:"auth,omitempty"`
}

// response is one reply frame.
type response struct {
	ID     uint64          `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// Handler serves one method: params arrive as raw JSON, the return value
// is marshalled as the result.
type Handler func(params json.RawMessage) (any, error)

// Server dispatches srpc requests to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	listener net.Listener
	conns    map[net.Conn]bool
	token    string
	closed   bool
	wg       sync.WaitGroup
}

// SetToken requires every request to carry the shared secret. Set before
// Listen. An empty token disables authentication (the default).
func (s *Server) SetToken(token string) {
	s.mu.Lock()
	s.token = token
	s.mu.Unlock()
}

// NewServer creates a server with no handlers.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]bool),
	}
}

// Handle registers a method handler.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// HandleFunc registers a typed handler: params unmarshal into P.
func HandleFunc[P any](s *Server, method string, fn func(P) (any, error)) {
	s.Handle(method, func(raw json.RawMessage) (any, error) {
		var p P
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("srpc: bad params for %s: %w", method, err)
			}
		}
		return fn(p)
	})
}

// Listen binds addr ("127.0.0.1:0" for an ephemeral port) and serves until
// Close.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("srpc: server closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound address (empty before Listen).
func (s *Server) Addr() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	reader := bufio.NewReader(conn)
	// Responses go through one buffered writer, flushed per response under
	// the mutex: each response reaches the wire as a single write, and
	// concurrent handlers never interleave frames.
	var writeMu sync.Mutex
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)
	for {
		line, err := reader.ReadBytes('\n')
		if err != nil {
			return
		}
		var req request
		if err := json.Unmarshal(line, &req); err != nil {
			continue // garbage frame; drop
		}
		// Serve each request on its own goroutine so a slow handler
		// doesn't head-of-line-block the connection.
		s.wg.Add(1)
		go func(req request) {
			defer s.wg.Done()
			resp := s.dispatch(req)
			writeMu.Lock()
			if err := enc.Encode(resp); err == nil {
				_ = w.Flush()
			}
			writeMu.Unlock()
		}(req)
	}
}

func (s *Server) dispatch(req request) response {
	s.mu.RLock()
	h, ok := s.handlers[req.Method]
	token := s.token
	s.mu.RUnlock()
	if token != "" && subtle.ConstantTimeCompare([]byte(req.Auth), []byte(token)) != 1 {
		return response{ID: req.ID, Error: "srpc: authentication failed"}
	}
	if !ok {
		return response{ID: req.ID, Error: "srpc: unknown method " + req.Method}
	}
	result, err := h(req.Params)
	if err != nil {
		return response{ID: req.ID, Error: err.Error()}
	}
	raw, err := json.Marshal(result)
	if err != nil {
		return response{ID: req.ID, Error: "srpc: marshalling result: " + err.Error()}
	}
	return response{ID: req.ID, Result: raw}
}

// Close stops accepting and closes every open connection.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// RemoteError wraps a server-side failure string.
type RemoteError struct{ Message string }

// Error implements error.
func (e *RemoteError) Error() string { return e.Message }

// ErrClientClosed is returned by calls on an explicitly Closed client.
var ErrClientClosed = errors.New("srpc: client closed")

// ErrConnClosed is returned — promptly, not after the call timeout — by
// every call pending when the peer closes the connection mid-call, and by
// calls issued after the connection was lost. Distinct from
// ErrClientClosed so requestors can tell a dead provider (rebind to an
// equivalent one) from their own orderly shutdown.
var ErrConnClosed = errors.New("srpc: connection closed by peer")

// ErrTimeout is wrapped by per-call deadline expiries.
var ErrTimeout = errors.New("srpc: call timed out")

// callResult is what the read loop (or failAll) delivers to a waiter.
type callResult struct {
	resp response
	err  error
}

// Client is a connection to an srpc server, safe for concurrent calls.
type Client struct {
	conn net.Conn
	// encMu guards the reusable encode buffer: each request is framed into
	// encBuf and reaches the wire as a single conn.Write, so concurrent
	// callers never interleave frames and steady-state calls don't
	// re-allocate encoder state.
	encMu   sync.Mutex
	encBuf  bytes.Buffer
	enc     *json.Encoder // writes into encBuf
	timeout time.Duration
	clock   clockwork.Clock
	token   string

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan callResult
	closed  bool
	// lost records that the connection died underneath us (vs an
	// explicit Close), so later calls fail with ErrConnClosed.
	lost bool
	done chan struct{}
	// inj, when set, injects faults at site "<site>/send" before each
	// request (chaos testing only; nil in production).
	inj     *faults.Injector
	injSite string
}

// Dial connects to an srpc server. timeout bounds each call (0 = 10s).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		timeout: timeout,
		clock:   clockwork.Real(),
		pending: make(map[uint64]chan callResult),
		done:    make(chan struct{}),
	}
	c.enc = json.NewEncoder(&c.encBuf)
	go c.readLoop()
	return c, nil
}

// SetToken attaches the shared secret to every subsequent call.
func (c *Client) SetToken(token string) {
	c.mu.Lock()
	c.token = token
	c.mu.Unlock()
}

// SetFaultInjector arms chaos hooks on this client: each call consults
// inj at site "<site>/send" — injected errors fail the call, drops lose
// the request in flight (the call then hits its deadline).
func (c *Client) SetFaultInjector(inj *faults.Injector, site string) {
	c.mu.Lock()
	c.inj = inj
	c.injSite = site
	c.mu.Unlock()
}

func (c *Client) readLoop() {
	defer close(c.done)
	reader := bufio.NewReader(c.conn)
	for {
		line, err := reader.ReadBytes('\n')
		if err != nil {
			c.failAll(err)
			return
		}
		var resp response
		if err := json.Unmarshal(line, &resp); err != nil {
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- callResult{resp: resp}
		}
	}
}

// failAll runs when the read loop dies: every pending call fails fast
// with ErrConnClosed instead of waiting out its deadline.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	pending := c.pending
	c.pending = make(map[uint64]chan callResult)
	if !c.closed {
		c.lost = true
	}
	c.closed = true
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- callResult{err: fmt.Errorf("%w: %v", ErrConnClosed, err)}
	}
}

// Call invokes method with params, unmarshalling the result into out
// (which may be nil to discard), bounded by the client's default timeout.
func (c *Client) Call(method string, params any, out any) error {
	return c.CallWithTimeout(method, params, out, 0)
}

// CallWithTimeout is Call with a per-call deadline override (0 = the
// client default) — the hook resilience.Policy uses to bound each attempt.
func (c *Client) CallWithTimeout(method string, params any, out any, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = c.timeout
	}
	// Marshal params before the call is registered: a marshalling failure
	// must not leave an orphaned pending-map entry behind (the read loop
	// would never resolve it, and failAll would signal a channel nobody is
	// listening on).
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("srpc: marshalling params: %w", err)
		}
		raw = b
	}
	c.mu.Lock()
	if c.closed {
		lost := c.lost
		c.mu.Unlock()
		if lost {
			return fmt.Errorf("%w: %s not sent", ErrConnClosed, method)
		}
		return ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	token := c.token
	inj, injSite := c.inj, c.injSite
	ch := make(chan callResult, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	dropped := false
	if inj != nil {
		if err := inj.Inject(injSite + FaultSiteSend); err != nil {
			c.abandon(id)
			return err
		}
		// A dropped request is never written to the wire; the call
		// waits out its deadline exactly as with real message loss.
		dropped = inj.Drop(injSite + FaultSiteSend)
	}
	if !dropped {
		c.encMu.Lock()
		c.encBuf.Reset()
		err := c.enc.Encode(request{ID: id, Method: method, Params: raw, Auth: token})
		if err == nil {
			_, err = c.conn.Write(c.encBuf.Bytes())
		}
		c.encMu.Unlock()
		if err != nil {
			c.abandon(id)
			return fmt.Errorf("srpc: sending request: %w", err)
		}
	}

	timer := c.clock.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			return res.err
		}
		if res.resp.Error != "" {
			return &RemoteError{Message: res.resp.Error}
		}
		if out != nil && len(res.resp.Result) > 0 {
			if err := json.Unmarshal(res.resp.Result, out); err != nil {
				return fmt.Errorf("srpc: unmarshalling result: %w", err)
			}
		}
		return nil
	case <-timer.C():
		c.abandon(id)
		return fmt.Errorf("%w: %s after %v", ErrTimeout, method, timeout)
	}
}

func (c *Client) abandon(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.conn.Close()
	<-c.done
}
