package srpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

type addParams struct {
	A float64 `json:"a"`
	B float64 `json:"b"`
}

func newServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer()
	HandleFunc(s, "add", func(p addParams) (any, error) {
		return p.A + p.B, nil
	})
	HandleFunc(s, "fail", func(struct{}) (any, error) {
		return nil, errors.New("deliberate failure")
	})
	HandleFunc(s, "slow", func(struct{}) (any, error) {
		time.Sleep(50 * time.Millisecond)
		return "done", nil
	})
	HandleFunc(s, "echo", func(p map[string]any) (any, error) { return p, nil })
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func dial(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestCallRoundTrip(t *testing.T) {
	s := newServer(t)
	c := dial(t, s)
	var out float64
	if err := c.Call("add", addParams{A: 3, B: 4}, &out); err != nil {
		t.Fatal(err)
	}
	if out != 7 {
		t.Fatalf("out = %v", out)
	}
}

func TestCallNilParamsAndResult(t *testing.T) {
	s := newServer(t)
	HandleFunc(s, "ping", func(struct{}) (any, error) { return "pong", nil })
	c := dial(t, s)
	if err := c.Call("ping", nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteError(t *testing.T) {
	s := newServer(t)
	c := dial(t, s)
	err := c.Call("fail", struct{}{}, nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Message, "deliberate failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	s := newServer(t)
	c := dial(t, s)
	err := c.Call("nope", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentCallsMultiplexed(t *testing.T) {
	s := newServer(t)
	c := dial(t, s)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out float64
			if err := c.Call("add", addParams{A: float64(i), B: 1}, &out); err != nil {
				errs <- err
				return
			}
			if out != float64(i+1) {
				errs <- fmt.Errorf("call %d: out = %v", i, out)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSlowHandlerDoesNotBlockOthers(t *testing.T) {
	s := newServer(t)
	c := dial(t, s)
	slowDone := make(chan struct{})
	go func() {
		var out string
		c.Call("slow", struct{}{}, &out)
		close(slowDone)
	}()
	// The fast call must complete while the slow one is in flight.
	start := time.Now()
	var out float64
	if err := c.Call("add", addParams{A: 1, B: 1}, &out); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("fast call took %v behind slow call", elapsed)
	}
	<-slowDone
}

func TestCallTimeout(t *testing.T) {
	s := NewServer()
	HandleFunc(s, "hang", func(struct{}) (any, error) {
		time.Sleep(time.Second)
		return nil, nil
	})
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("hang", nil, nil); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v", err)
	}
}

func TestServerCloseFailsInFlight(t *testing.T) {
	s := newServer(t)
	c := dial(t, s)
	done := make(chan error, 1)
	go func() {
		done <- c.Call("slow", struct{}{}, nil)
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if err == nil {
			// The reply may have raced the close; both outcomes are
			// acceptable, but no hang.
			return
		}
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight call hung after server close")
	}
}

func TestClientClosedRejectsCalls(t *testing.T) {
	s := newServer(t)
	c := dial(t, s)
	c.Close()
	c.Close() // idempotent
	err := c.Call("add", addParams{}, nil)
	if !errors.Is(err, ErrClientClosed) && !strings.Contains(err.Error(), "connection lost") {
		t.Fatalf("err = %v", err)
	}
}

func TestBadParamsRejectedByTypedHandler(t *testing.T) {
	s := newServer(t)
	c := dial(t, s)
	// "add" expects an object; send an array.
	err := c.Call("add", []int{1, 2}, nil)
	if err == nil || !strings.Contains(err.Error(), "bad params") {
		t.Fatalf("err = %v", err)
	}
}

func TestEchoComplexValue(t *testing.T) {
	s := newServer(t)
	c := dial(t, s)
	in := map[string]any{"name": "Neem-Sensor", "value": 21.5, "tags": []any{"a", "b"}}
	var out map[string]any
	if err := c.Call("echo", in, &out); err != nil {
		t.Fatal(err)
	}
	if out["name"] != "Neem-Sensor" || out["value"] != 21.5 {
		t.Fatalf("echo = %v", out)
	}
}

func TestGarbageFrameIgnored(t *testing.T) {
	s := newServer(t)
	// Raw connection sending garbage, then a valid request.
	c := dial(t, s)
	// The garbage goes through a separate raw connection to the same
	// server to prove the server survives it.
	raw, err := Dial(s.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.conn.Write([]byte("this is not json\n"))
	var out float64
	if err := c.Call("add", addParams{A: 2, B: 2}, &out); err != nil || out != 4 {
		t.Fatalf("server wedged by garbage: %v %v", out, err)
	}
}

func TestListenAfterClose(t *testing.T) {
	s := NewServer()
	s.Close()
	if err := s.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("Listen after Close accepted")
	}
}

func TestAddrBeforeListen(t *testing.T) {
	if NewServer().Addr() != "" {
		t.Fatal("Addr before Listen should be empty")
	}
}

func TestHandlerRawJSON(t *testing.T) {
	s := NewServer()
	s.Handle("raw", func(params json.RawMessage) (any, error) {
		return len(params), nil
	})
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, _ := Dial(s.Addr(), time.Second)
	defer c.Close()
	var n int
	if err := c.Call("raw", map[string]int{"x": 1}, &n); err != nil || n == 0 {
		t.Fatalf("raw handler: %v %v", n, err)
	}
}

func TestAuthTokenRequired(t *testing.T) {
	s := NewServer()
	s.SetToken("farm-secret")
	HandleFunc(s, "ping", func(struct{}) (any, error) { return "pong", nil })
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Unauthenticated: rejected before dispatch.
	c, err := Dial(s.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("ping", nil, nil); err == nil || !strings.Contains(err.Error(), "authentication failed") {
		t.Fatalf("err = %v", err)
	}
	// Wrong token.
	c.SetToken("wrong")
	if err := c.Call("ping", nil, nil); err == nil || !strings.Contains(err.Error(), "authentication failed") {
		t.Fatalf("err = %v", err)
	}
	// Right token.
	c.SetToken("farm-secret")
	var out string
	if err := c.Call("ping", nil, &out); err != nil || out != "pong" {
		t.Fatalf("authenticated call = %q, %v", out, err)
	}
}

func TestNoTokenMeansOpen(t *testing.T) {
	s := newServer(t)
	c := dial(t, s)
	c.SetToken("irrelevant") // servers without a token ignore auth fields
	var out float64
	if err := c.Call("add", addParams{A: 1, B: 1}, &out); err != nil || out != 2 {
		t.Fatalf("open server rejected: %v", err)
	}
}

func TestConnClosedMidCallFailsFastWithErrConnClosed(t *testing.T) {
	release := make(chan struct{})
	s := NewServer()
	HandleFunc(s, "hang", func(struct{}) (any, error) {
		<-release
		return nil, nil
	})
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer close(release)
	// Long call timeout: a prompt failure proves the pending call was
	// failed by the connection loss, not by the deadline.
	c, err := Dial(s.Addr(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() { done <- c.Call("hang", nil, nil) }()
	time.Sleep(20 * time.Millisecond) // let the request reach the server
	start := time.Now()
	// Close in the background: Server.Close waits for the stuck handler,
	// but the connections are torn down immediately, which is what the
	// pending call must react to.
	go s.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("err = %v, want ErrConnClosed", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("pending call took %v to fail after close", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pending call hung after server closed the connection")
	}
	// Calls after the loss also report the lost connection, not a
	// client-side close the caller never requested.
	if err := c.Call("hang", nil, nil); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("post-loss call err = %v, want ErrConnClosed", err)
	}
}

func TestExplicitCloseStillReportsClientClosed(t *testing.T) {
	s := newServer(t)
	c := dial(t, s)
	c.Close()
	if err := c.Call("add", addParams{}, nil); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err = %v, want ErrClientClosed", err)
	}
}

func TestCallWithTimeoutOverridesDefault(t *testing.T) {
	s := NewServer()
	HandleFunc(s, "hang", func(struct{}) (any, error) {
		time.Sleep(time.Second)
		return nil, nil
	})
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.CallWithTimeout("hang", nil, nil, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("override deadline not honored: %v", elapsed)
	}
}
