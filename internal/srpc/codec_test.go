package srpc

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sensorcer/internal/wire"
)

// pointShape is a test-only hot shape: both marshal directions plus a
// hit counter proving the fast path (not the JSON fallback) carried it.
type pointShape struct {
	X, Y int64
}

const shapePoint byte = 200 // test-only tag, outside remote/wire ranges

var pointFastDecodes atomic.Int64

func (p pointShape) SrpcShape() byte { return shapePoint }

func (p pointShape) AppendSrpc(buf []byte) ([]byte, error) {
	buf = wire.AppendSvarint(buf, p.X)
	return wire.AppendSvarint(buf, p.Y), nil
}

func (p *pointShape) UnmarshalSrpc(shape byte, data []byte) error {
	if shape != shapePoint {
		return fmt.Errorf("pointShape: unexpected shape %d", shape)
	}
	x, rest, ok := wire.ConsumeSvarint(data)
	if !ok {
		return fmt.Errorf("pointShape: truncated x")
	}
	y, rest, ok := wire.ConsumeSvarint(rest)
	if !ok || len(rest) != 0 {
		return fmt.Errorf("pointShape: truncated y")
	}
	p.X, p.Y = x, y
	pointFastDecodes.Add(1)
	return nil
}

func TestParseCodec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Codec
		err  bool
	}{
		{"binary", CodecBinary, false},
		{"", CodecBinary, false},
		{"json", CodecJSON, false},
		{"protobuf", 0, true},
	} {
		got, err := ParseCodec(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseCodec(%q) = %v, %v", tc.in, got, err)
		}
	}
	if CodecBinary.String() != "binary" || CodecJSON.String() != "json" {
		t.Fatal("Codec.String mismatch")
	}
}

func TestSplitMethodLongestPrefix(t *testing.T) {
	for _, tc := range []struct {
		method string
		idx    byte
		suffix string
	}{
		{"repl.ship.s0", 1, "s0"},
		{"repl.snapshot.s0", 2, "s0"},
		{"registrar.lookup", 4, ""},
		{"registrar.register", 5, "register"}, // registrar.lookup is longer but doesn't match
		{"accessor.getReadings.Neem", 8, "Neem"},
		{"totally.unknown", 0, "totally.unknown"},
		{"", 0, ""},
	} {
		idx, suffix := splitMethod(tc.method)
		if idx != tc.idx || suffix != tc.suffix {
			t.Errorf("splitMethod(%q) = %d, %q; want %d, %q", tc.method, idx, suffix, tc.idx, tc.suffix)
		}
		// Reassembly must invert the split.
		full, ok := appendMethod(nil, idx, []byte(suffix))
		if !ok || string(full) != tc.method {
			t.Errorf("appendMethod(%d, %q) = %q, %v", idx, suffix, full, ok)
		}
	}
	if _, ok := appendMethod(nil, byte(len(methodPrefixes)), nil); ok {
		t.Fatal("appendMethod accepted an out-of-range prefix index")
	}
}

// TestRequestFrameRoundTrip drives one request through the full encode
// path (beginFrame → appendRequest → finishFrame) and back through the
// wire-read path (readFrameBody → decodeRequest).
func TestRequestFrameRoundTrip(t *testing.T) {
	b := beginFrame(nil)
	b, err := appendRequest(b, 42, "repl.ship.s0", "secret", pointShape{X: -7, Y: 1 << 60}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frame := finishFrame(b, frameRequest)

	r := bufio.NewReader(bytes.NewReader(frame))
	tag, _ := r.ReadByte()
	if tag != frameRequest {
		t.Fatalf("tag = %#x", tag)
	}
	var body []byte
	if err := readFrameBody(r, &body); err != nil {
		t.Fatal(err)
	}
	req, _, ok := decodeRequest(body, nil)
	if !ok {
		t.Fatal("decodeRequest rejected a valid frame")
	}
	if req.id != 42 || string(req.method) != "repl.ship.s0" || string(req.auth) != "secret" {
		t.Fatalf("req = %+v", req)
	}
	var p pointShape
	if err := p.UnmarshalSrpc(req.payload.shape, req.payload.data); err != nil {
		t.Fatal(err)
	}
	if p.X != -7 || p.Y != 1<<60 {
		t.Fatalf("payload = %+v", p)
	}
}

func TestResponseFrameRoundTrip(t *testing.T) {
	// Success payload.
	b := beginFrame(nil)
	b, err := appendResponse(b, 9, "", pointShape{X: 3, Y: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frame := finishFrame(b, frameResponse)
	res, ok := decodeResponse(frame[2:]) // 1B tag + 1B length for this small frame
	if !ok || res.isErr || res.id != 9 || res.payload.shape != shapePoint {
		t.Fatalf("res = %+v, ok=%v", res, ok)
	}
	// Error response.
	b = beginFrame(nil)
	b, err = appendResponse(b, 10, "boom", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	frame = finishFrame(b, frameResponse)
	res, ok = decodeResponse(frame[2:])
	if !ok || !res.isErr || res.id != 10 || string(res.errMsg) != "boom" {
		t.Fatalf("error res = %+v, ok=%v", res, ok)
	}
}

// TestDecodeRequestMalformed feeds decodeRequest systematically truncated
// bodies: every prefix of a valid body must be cleanly rejected (the
// frame-length byte count makes most prefixes invalid bodies).
func TestDecodeRequestTruncations(t *testing.T) {
	b := beginFrame(nil)
	b, err := appendRequest(b, 7, "registrar.lookup", "tok", nil, []byte(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	frame := finishFrame(b, frameRequest)
	body := frame[2:] // tag + 1B uvarint length
	if _, _, ok := decodeRequest(body, nil); !ok {
		t.Fatal("full body must decode")
	}
	for i := 0; i < 5 && i < len(body); i++ {
		if _, _, ok := decodeRequest(body[:i], nil); ok {
			t.Fatalf("truncated body (%d bytes) decoded", i)
		}
	}
}

func TestReadFrameBodyRejectsOversize(t *testing.T) {
	var in []byte
	in = wire.AppendUvarint(in, MaxFrame+1)
	var buf []byte
	err := readFrameBody(bufio.NewReader(bytes.NewReader(in)), &buf)
	if err != errFrameTooBig {
		t.Fatalf("err = %v, want errFrameTooBig", err)
	}
}

// TestReadFrameBodyBoundedByReceived proves a hostile length prefix can't
// force a large allocation: the claimed length is just under MaxFrame but
// the peer sends only a few bytes, so the grown buffer must track what
// actually arrived, not the claim.
func TestReadFrameBodyBoundedByReceived(t *testing.T) {
	var in []byte
	in = wire.AppendUvarint(in, MaxFrame-1)
	in = append(in, []byte("only a few bytes")...)
	var buf []byte
	err := readFrameBody(bufio.NewReader(bytes.NewReader(in)), &buf)
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	if cap(buf) > 128<<10 {
		t.Fatalf("hostile prefix allocated %d bytes for a 16-byte body", cap(buf))
	}
}

// waitPeerBinary blocks until the client has processed the server's
// preamble (bounded); after the first response arrives it always has,
// since the preamble precedes all responses in stream order.
func waitPeerBinary(t *testing.T, c *Client) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !c.peerBinary.Load() {
		if time.Now().After(deadline) {
			t.Fatal("client never saw the server preamble")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBinaryNegotiationAndFastPath is the end-to-end binary round trip:
// both sides binary, second call guaranteed framed, fast-path encoders
// engaged on both request and response payloads.
func TestBinaryNegotiationAndFastPath(t *testing.T) {
	s := NewServer()
	HandleFunc(s, "swap", func(p pointShape) (any, error) {
		return pointShape{X: p.Y, Y: p.X}, nil
	})
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var out pointShape
	if err := c.Call("swap", pointShape{X: 1, Y: 2}, &out); err != nil {
		t.Fatal(err)
	}
	if out.X != 2 || out.Y != 1 {
		t.Fatalf("out = %+v", out)
	}
	waitPeerBinary(t, c)

	// From here every frame is binary. The fast-path counter must move by
	// exactly two per call: request decode at the server, response decode
	// at the client.
	before := pointFastDecodes.Load()
	big := int64(1)<<60 + 3
	if err := c.Call("swap", pointShape{X: big, Y: -big}, &out); err != nil {
		t.Fatal(err)
	}
	if out.X != -big || out.Y != big {
		t.Fatalf("out = %+v", out)
	}
	if got := pointFastDecodes.Load() - before; got != 2 {
		t.Fatalf("fast-path decodes = %d, want 2 (request + response)", got)
	}
}

// TestBinaryJSONFallbackShapes: types without hot-shape encoders ride as
// JSON payloads inside binary frames on the same negotiated connection.
func TestBinaryJSONFallbackInsideFrames(t *testing.T) {
	s := newServer(t)
	c := dial(t, s)
	var warm float64
	if err := c.Call("add", addParams{A: 1, B: 1}, &warm); err != nil {
		t.Fatal(err)
	}
	waitPeerBinary(t, c)
	var out float64
	if err := c.Call("add", addParams{A: 20, B: 22}, &out); err != nil || out != 42 {
		t.Fatalf("fallback call = %v, %v", out, err)
	}
	// Remote errors survive the binary framing too.
	if err := c.Call("fail", struct{}{}, nil); err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("err = %v", err)
	}
	if err := c.Call("nope", nil, nil); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err = %v", err)
	}
}

// TestJSONClientAgainstBinaryServer: a legacy-codec client never sends
// the preamble, so the binary-capable server keeps the whole conversation
// in JSON (its own preamble is dropped as a garbage line).
func TestJSONClientAgainstBinaryServer(t *testing.T) {
	s := newServer(t)
	c, err := DialCodec(s.Addr(), CodecJSON, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		var out float64
		if err := c.Call("add", addParams{A: float64(i), B: 1}, &out); err != nil || out != float64(i+1) {
			t.Fatalf("call %d = %v, %v", i, out, err)
		}
	}
	if c.peerBinary.Load() {
		t.Fatal("JSON client must ignore capability announcements")
	}
}

// TestBinaryClientAgainstJSONServer: the server never announces, so the
// binary-capable client never sends a frame and the connection stays on
// the legacy protocol end to end.
func TestBinaryClientAgainstJSONServer(t *testing.T) {
	s := NewServer()
	s.SetCodec(CodecJSON)
	HandleFunc(s, "add", func(p addParams) (any, error) { return p.A + p.B, nil })
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		var out float64
		if err := c.Call("add", addParams{A: float64(i), B: 2}, &out); err != nil || out != float64(i+2) {
			t.Fatalf("call %d = %v, %v", i, out, err)
		}
	}
	if c.peerBinary.Load() {
		t.Fatal("peerBinary flipped against a JSON-only server")
	}
}

// TestServerDropsOversizeFrame: a hostile length prefix past MaxFrame
// drops the connection before any body byte is read; other connections
// are unaffected.
func TestServerDropsOversizeFrame(t *testing.T) {
	s := newServer(t)
	raw, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	attack := append([]byte{frameRequest}, wire.AppendUvarint(nil, MaxFrame+1)...)
	if _, err := raw.Write(attack); err != nil {
		t.Fatal(err)
	}
	// The server closes our end; drain until EOF (past its preamble).
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.Copy(io.Discard, raw); err != nil {
		t.Fatalf("connection not closed cleanly: %v", err)
	}
	// A well-behaved client still works.
	c := dial(t, s)
	var out float64
	if err := c.Call("add", addParams{A: 2, B: 3}, &out); err != nil || out != 5 {
		t.Fatalf("server wedged after oversize frame: %v %v", out, err)
	}
}

// TestMixedTrafficOnBinaryConnection: JSON garbage lines interleaved with
// hand-built binary frames on one raw connection — the server must drop
// the garbage and answer the frame.
func TestMixedTrafficOnBinaryConnection(t *testing.T) {
	s := newServer(t)
	raw, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	var msg []byte
	msg = append(msg, preamble[:]...)                  // announce binary
	msg = append(msg, []byte("this is not json\n")...) // garbage line
	b := beginFrame(nil)
	b, err = appendRequest(b, 1, "add", "", nil, []byte(`{"a":4,"b":5}`))
	if err != nil {
		t.Fatal(err)
	}
	msg = append(msg, finishFrame(b, frameRequest)...)
	if _, err := raw.Write(msg); err != nil {
		t.Fatal(err)
	}

	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	r := bufio.NewReader(raw)
	// First the server preamble, then our binary response.
	var pre [5]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil || pre != preamble {
		t.Fatalf("server preamble = %v, %v", pre, err)
	}
	tag, err := r.ReadByte()
	if err != nil || tag != frameResponse {
		t.Fatalf("tag = %#x, %v", tag, err)
	}
	var body []byte
	if err := readFrameBody(r, &body); err != nil {
		t.Fatal(err)
	}
	res, ok := decodeResponse(body)
	if !ok || res.isErr || res.id != 1 || res.payload.shape != ShapeJSON {
		t.Fatalf("res = %+v, ok=%v", res, ok)
	}
	if got := string(res.payload.data); got != "9" {
		t.Fatalf("payload = %q", got)
	}
}

// TestBinaryAuth: token auth over binary frames, wrong and right.
func TestBinaryAuth(t *testing.T) {
	s := NewServer()
	s.SetToken("farm-secret")
	HandleFunc(s, "ping", func(struct{}) (any, error) { return "pong", nil })
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("ping", nil, nil); err == nil || !strings.Contains(err.Error(), "authentication failed") {
		t.Fatalf("err = %v", err)
	}
	waitPeerBinary(t, c) // the rejections below travel as binary frames
	if err := c.Call("ping", nil, nil); err == nil || !strings.Contains(err.Error(), "authentication failed") {
		t.Fatalf("binary-framed unauthenticated call: err = %v", err)
	}
	c.SetToken("farm-secret")
	var out string
	if err := c.Call("ping", nil, &out); err != nil || out != "pong" {
		t.Fatalf("authenticated binary call = %q, %v", out, err)
	}
}

// TestFinishFrameLengths: the backward length stamp must be exact for
// bodies around every uvarint width boundary the headroom covers.
func TestFinishFrameLengths(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 300, 16383, 16384, 70000} {
		b := beginFrame(nil)
		for len(b)-frameHeadroom < n {
			b = append(b, 0xAB)
		}
		frame := finishFrame(b, frameRequest)
		r := bufio.NewReader(bytes.NewReader(frame))
		tag, _ := r.ReadByte()
		if tag != frameRequest {
			t.Fatalf("n=%d: tag = %#x", n, tag)
		}
		var body []byte
		if err := readFrameBody(r, &body); err != nil || len(body) != n {
			t.Fatalf("n=%d: body len %d, err %v", n, len(body), err)
		}
	}
}
