package srpc

import (
	"bufio"
	"bytes"
	"testing"

	"sensorcer/internal/wire"
)

// fuzzSeedFrames builds representative wire inputs for the seed corpus:
// valid frames both ways, truncations, hostile length prefixes, and
// mixed-codec garbage around the preamble byte. The same builders feed
// f.Add so the checked-in corpus under testdata/fuzz and the in-code
// seeds stay consistent.
func fuzzSeedFrames() [][]byte {
	var seeds [][]byte
	// A valid request frame (JSON-fallback payload).
	b := beginFrame(nil)
	b, _ = appendRequest(b, 1, "repl.ship.s0", "tok", nil, []byte(`{"n":1}`))
	req := append([]byte(nil), finishFrame(b, frameRequest)...)
	seeds = append(seeds, req)
	// A valid success response and a valid error response.
	b = beginFrame(nil)
	b, _ = appendResponse(b, 2, "", nil, []byte(`"ok"`))
	seeds = append(seeds, append([]byte(nil), finishFrame(b, frameResponse)...))
	b = beginFrame(nil)
	b, _ = appendResponse(b, 3, "boom", nil, nil)
	seeds = append(seeds, append([]byte(nil), finishFrame(b, frameResponse)...))
	// Truncations of the valid request at every interesting boundary.
	for _, n := range []int{1, 2, 3, len(req) / 2, len(req) - 1} {
		if n < len(req) {
			seeds = append(seeds, append([]byte(nil), req[:n]...))
		}
	}
	// Hostile length prefixes: over MaxFrame, and huge-but-legal with no body.
	seeds = append(seeds, append([]byte{frameRequest}, wire.AppendUvarint(nil, MaxFrame+1)...))
	seeds = append(seeds, append([]byte{frameResponse}, wire.AppendUvarint(nil, MaxFrame-1)...))
	// Overlong uvarint length encoding.
	seeds = append(seeds, append([]byte{frameRequest}, []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}...))
	// Mixed-codec garbage on the preamble byte: the preamble itself, a
	// corrupted preamble, and a preamble followed by a frame.
	seeds = append(seeds, append([]byte(nil), preamble[:]...))
	seeds = append(seeds, []byte{preambleByte, 'x', 'b', '1', '\n'})
	seeds = append(seeds, append(append([]byte(nil), preamble[:]...), req...))
	// Plain JSON line and binary junk.
	seeds = append(seeds, []byte(`{"id":1,"method":"add","params":{}}`+"\n"))
	seeds = append(seeds, []byte{0xB1, 0xB2, 0xBF, 0x00, 0xFF})
	return seeds
}

// FuzzDecodeFrame drives raw bytes through the exact read path a server
// or client connection runs: peek the first byte, dispatch to binary
// frame reading + body decoding or to the JSON line reader. Properties:
// never panic, and never allocate more than the bytes actually received
// (plus one read chunk) regardless of the claimed frame length.
func FuzzDecodeFrame(f *testing.F) {
	for _, s := range fuzzSeedFrames() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		var scratch []byte
		for {
			first, err := r.Peek(1)
			if err != nil {
				return
			}
			switch first[0] {
			case frameRequest, frameResponse:
				_, _ = r.Discard(1)
				var body []byte
				if err := readFrameBody(r, &body); err != nil {
					if len(body) != 0 {
						t.Fatalf("failed read left %d bytes in the buffer", len(body))
					}
					return
				}
				if cap(body) > len(data)+(64<<10) {
					t.Fatalf("claimed length allocated %d bytes for %d input bytes", cap(body), len(data))
				}
				if first[0] == frameRequest {
					req, sc, ok := decodeRequest(body, scratch)
					scratch = sc
					if ok && len(req.method) > len(body)+len(methodPrefixes[len(methodPrefixes)-1])+32 {
						t.Fatalf("method longer than any encodable name: %d", len(req.method))
					}
				} else {
					_, _ = decodeResponse(body)
				}
			default:
				// JSON path: consume one line like the connection loops do.
				if _, err := r.ReadBytes('\n'); err != nil {
					return
				}
			}
		}
	})
}

// FuzzReadUvarint pins the overlong-encoding and overflow rejection of
// the frame-length reader.
func FuzzReadUvarint(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x7f})
	f.Add([]byte{0x80, 0x01})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := readUvarint(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and re-decode to itself.
		enc := wire.AppendUvarint(nil, v)
		got, err := readUvarint(bufio.NewReader(bytes.NewReader(enc)))
		if err != nil || got != v {
			t.Fatalf("uvarint %d re-decode = %d, %v", v, got, err)
		}
		// And the wire package's consumer must agree byte for byte.
		wv, rest, ok := wire.ConsumeUvarint(data)
		if !ok || wv != v {
			t.Fatalf("ConsumeUvarint = %d, %v; readUvarint = %d", wv, ok, v)
		}
		_ = rest
	})
}
