// The binary frame protocol (ROADMAP item 3): length-prefixed frames
// replace newline-delimited JSON on the hot wire paths, with per-frame
// self-description so both codecs coexist on one connection.
//
// Negotiation. A binary-capable endpoint writes a 5-byte preamble —
// 0xBF 's' 'b' '1' '\n' — immediately after the TCP connect (server at
// accept, client at Dial). To a legacy JSON-only peer the preamble is one
// garbage line, which the JSON loops have always dropped; to a
// binary-capable peer it is the capability announcement. An endpoint
// sends binary frames only after it has seen the peer's preamble, so a
// binary client interoperates with a JSON-only server (and vice versa) by
// construction: nothing binary is ever sent at a peer that has not proved
// it can read it. Because TCP preserves order, the server always sees the
// client preamble before request #1; the client's first request may still
// race out as JSON before the server preamble arrives, which is legal —
// frames are self-describing, and a response always mirrors the codec of
// its request.
//
// Framing. Every binary frame is
//
//	tag (1B: 0xB1 request, 0xB2 response) | uvarint body length | body
//
// Request body:  uvarint id | 1B method-prefix index (0 = none) |
//	uvarint suffix len + suffix | uvarint auth len + auth |
//	1B payload shape | payload (rest of body)
// Response body: uvarint id | 1B status (0 ok, 1 error) |
//	error: message (rest) — ok: 1B payload shape | payload (rest)
//
// The first byte of every frame (0xB1/0xB2/0xBF) is outside the ASCII
// range JSON frames start with ('{' = 0x7B), so the read loops dispatch
// per frame on one peeked byte. Payload shape 0 is the reflection-free
// generic fallback: the payload bytes are the same JSON the legacy codec
// would have sent, wrapped in a binary frame. Non-zero shapes are the
// hand-written fast paths (hot-shape encoders in internal/remote and
// internal/wire) that never touch encoding/json.
//
// Memory. Frames are encoded into and decoded from pooled []byte buffers
// (oversize ones are discarded rather than pinned by the pool), and the
// decoders alias the frame buffer instead of copying: a request payload
// handed to a handler and a response payload handed to a caller are
// windows into the pooled frame, valid only until the handler/call
// returns. Hostile length prefixes allocate bounded memory: the body is
// read in chunks, so allocation tracks bytes actually received, never the
// claimed length.
package srpc

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"

	"sensorcer/internal/wire"
)

// Codec selects the wire encoding of a Server or Client.
type Codec int

const (
	// CodecBinary announces binary capability and uses binary frames with
	// any peer that announces it back, JSON otherwise (the default).
	CodecBinary Codec = iota
	// CodecJSON speaks only newline-delimited JSON — bit-compatible with
	// the pre-binary protocol, kept for ablation (-codec=json) and legacy
	// peers.
	CodecJSON
)

// String names the codec for flags and logs.
func (c Codec) String() string {
	if c == CodecJSON {
		return "json"
	}
	return "binary"
}

// ParseCodec parses a -codec flag value.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "binary", "":
		return CodecBinary, nil
	case "json":
		return CodecJSON, nil
	}
	return 0, fmt.Errorf("srpc: unknown codec %q (want binary or json)", s)
}

const (
	// preambleByte opens the capability announcement line.
	preambleByte byte = 0xBF
	// frameRequest and frameResponse tag binary frames.
	frameRequest  byte = 0xB1
	frameResponse byte = 0xB2
)

// preamble is the capability announcement: a garbage line to a JSON-only
// peer, a binary-capability proof to anyone else.
var preamble = [5]byte{preambleByte, 's', 'b', '1', '\n'}

// MaxFrame bounds a binary frame body (64 MiB) — snapshots ship well
// under it, and a hostile length prefix past it drops the connection
// before a single byte of body is read.
const MaxFrame = 64 << 20

// ShapeJSON is the payload shape of the generic fallback: the payload is
// the JSON the legacy codec would have sent.
const ShapeJSON byte = 0

// BinaryMarshaler is the fast-path encode side of a hot message shape.
// Implemented on value types passed as srpc params or returned as srpc
// results; everything else falls back to JSON-in-a-binary-frame.
type BinaryMarshaler interface {
	// SrpcShape tags the payload (never ShapeJSON).
	SrpcShape() byte
	// AppendSrpc appends the binary payload to buf.
	AppendSrpc(buf []byte) ([]byte, error)
}

// BinaryUnmarshaler is the decode side, implemented on *T. data aliases
// the frame buffer: anything retained must be copied.
type BinaryUnmarshaler interface {
	UnmarshalSrpc(shape byte, data []byte) error
}

// errFrameTooBig drops connections advertising implausible frames.
var errFrameTooBig = errors.New("srpc: frame exceeds MaxFrame")

// maxPooledBuf is the oversize-discard cap: one giant ShipBatch must not
// pin a quarter-megabyte buffer in the pool forever.
const maxPooledBuf = 256 << 10

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if b == nil || cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// frameHeadroom reserves room at the front of an encode buffer for the
// frame tag plus a worst-case uvarint body length, so a frame is built in
// place and stamped backwards — no shifting, no second buffer.
const frameHeadroom = 11

var headZeros [frameHeadroom]byte

// beginFrame resets buf and reserves the headroom.
func beginFrame(buf []byte) []byte {
	return append(buf[:0], headZeros[:]...)
}

// finishFrame stamps tag and body length immediately before the body and
// returns the whole wire frame (an alias into buf).
func finishFrame(buf []byte, tag byte) []byte {
	body := uint64(len(buf) - frameHeadroom)
	var tmp [frameHeadroom - 1]byte
	n := 0
	for v := body; ; n++ {
		if v < 0x80 {
			tmp[n] = byte(v)
			n++
			break
		}
		tmp[n] = byte(v) | 0x80
		v >>= 7
	}
	start := frameHeadroom - 1 - n
	buf[start] = tag
	copy(buf[start+1:frameHeadroom], tmp[:n])
	return buf[start:]
}

// readFrameBody reads one uvarint-prefixed frame body into *buf after the
// caller consumed the tag byte. Allocation is bounded by bytes actually
// received: the body is read in 64 KiB chunks, so a hostile length prefix
// costs at most one chunk beyond what the peer really sent.
func readFrameBody(r *bufio.Reader, buf *[]byte) error {
	n64, err := readUvarint(r)
	if err != nil {
		return err
	}
	if n64 > MaxFrame {
		return errFrameTooBig
	}
	n := int(n64)
	const chunk = 64 << 10
	b := (*buf)[:0]
	for len(b) < n {
		want := n - len(b)
		if want > chunk {
			want = chunk
		}
		if cap(b)-len(b) < want {
			grown := make([]byte, len(b), growCap(len(b)+want, n))
			copy(grown, b)
			b = grown
		}
		seg := b[len(b) : len(b)+want]
		if _, err := io.ReadFull(r, seg); err != nil {
			*buf = b[:0]
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		b = b[:len(b)+want]
	}
	*buf = b
	return nil
}

// growCap doubles toward the known final size without overshooting it.
func growCap(need, final int) int {
	c := need * 2
	if c > final {
		c = final
	}
	if c < need {
		c = need
	}
	return c
}

// readUvarint is binary.ReadUvarint over the bufio.Reader, rejecting
// overlong encodings.
func readUvarint(r *bufio.Reader) (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		c, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		if i >= 10 || (i == 9 && c > 1) {
			return 0, errors.New("srpc: uvarint overflows 64 bits")
		}
		if c < 0x80 {
			return v | uint64(c)<<shift, nil
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
}

// methodPrefixes is the static method-name dictionary: every hot method
// family's common prefix encodes as one byte, leaving only the short
// dynamic suffix (shard name, service id) on the wire. Index 0 means "no
// prefix"; the table is part of the wire format — append only.
var methodPrefixes = [...]string{
	1:  "repl.ship.",
	2:  "repl.snapshot.",
	3:  "repl.heartbeat.",
	4:  "registrar.lookup",
	5:  "registrar.",
	6:  "coord.",
	7:  "accessor.getValue.",
	8:  "accessor.getReadings.",
	9:  "accessor.describe.",
	10: "servicer.service.",
	11: "subscribe.",
}

// splitMethod finds the longest dictionary prefix of method.
func splitMethod(method string) (idx byte, suffix string) {
	best := 0
	for i := 1; i < len(methodPrefixes); i++ {
		p := methodPrefixes[i]
		if len(p) > len(methodPrefixes[best]) && len(method) >= len(p) && method[:len(p)] == p {
			best = i
		}
	}
	return byte(best), method[len(methodPrefixes[best]):]
}

// appendMethod appends the full method name for prefix index idx and
// suffix bytes to dst (the per-connection scratch buffer).
func appendMethod(dst []byte, idx byte, suffix []byte) ([]byte, bool) {
	if int(idx) >= len(methodPrefixes) {
		return dst, false
	}
	dst = append(dst, methodPrefixes[idx]...)
	return append(dst, suffix...), true
}

// binPayload is a decoded payload: shape tag plus bytes aliasing the
// frame buffer.
type binPayload struct {
	shape byte
	data  []byte
}

// binRequest is a decoded request frame. method aliases the scratch
// buffer passed to decodeRequest; auth and payload alias the frame body.
type binRequest struct {
	id      uint64
	method  []byte
	auth    []byte
	payload binPayload
}

// appendRequest encodes a request body after beginFrame; finishFrame with
// frameRequest completes it. payload follows the fast path when params
// implements BinaryMarshaler, otherwise jsonParams (pre-marshalled by the
// caller) rides as ShapeJSON.
func appendRequest(buf []byte, id uint64, method, auth string, params BinaryMarshaler, jsonParams []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, id)
	idx, suffix := splitMethod(method)
	buf = append(buf, idx)
	buf = wire.AppendString(buf, suffix)
	buf = wire.AppendString(buf, auth)
	if params != nil {
		buf = append(buf, params.SrpcShape())
		return params.AppendSrpc(buf)
	}
	buf = append(buf, ShapeJSON)
	return append(buf, jsonParams...), nil
}

// decodeRequest parses a request body. scratch backs the reassembled
// method name and is returned (possibly regrown) for reuse.
func decodeRequest(body, scratch []byte) (req binRequest, scratchOut []byte, ok bool) {
	scratchOut = scratch
	id, rest, ok := wire.ConsumeUvarint(body)
	if !ok || len(rest) < 1 {
		return binRequest{}, scratchOut, false
	}
	idx := rest[0]
	suffix, rest, ok := wire.ConsumeBytes(rest[1:])
	if !ok {
		return binRequest{}, scratchOut, false
	}
	method, ok := appendMethod(scratch[:0], idx, suffix)
	scratchOut = method
	if !ok {
		return binRequest{}, scratchOut, false
	}
	auth, rest, ok := wire.ConsumeBytes(rest)
	if !ok || len(rest) < 1 {
		return binRequest{}, scratchOut, false
	}
	return binRequest{
		id:      id,
		method:  method,
		auth:    auth,
		payload: binPayload{shape: rest[0], data: rest[1:]},
	}, scratchOut, true
}

// binResponse is a decoded response frame; errMsg and payload alias the
// frame body.
type binResponse struct {
	id      uint64
	errMsg  []byte
	isErr   bool
	payload binPayload
}

// appendResponse encodes a response body after beginFrame. On errMsg !=
// "" the payload is ignored; otherwise result follows the fast path when
// it implements BinaryMarshaler, else jsonResult rides as ShapeJSON.
func appendResponse(buf []byte, id uint64, errMsg string, result BinaryMarshaler, jsonResult []byte) ([]byte, error) {
	buf = wire.AppendUvarint(buf, id)
	if errMsg != "" {
		buf = append(buf, 1)
		return append(buf, errMsg...), nil
	}
	buf = append(buf, 0)
	if result != nil {
		buf = append(buf, result.SrpcShape())
		return result.AppendSrpc(buf)
	}
	buf = append(buf, ShapeJSON)
	return append(buf, jsonResult...), nil
}

// decodeResponse parses a response body.
func decodeResponse(body []byte) (binResponse, bool) {
	id, rest, ok := wire.ConsumeUvarint(body)
	if !ok || len(rest) < 1 {
		return binResponse{}, false
	}
	if rest[0] == 1 {
		return binResponse{id: id, isErr: true, errMsg: rest[1:]}, true
	}
	if len(rest) < 2 {
		return binResponse{}, false
	}
	return binResponse{id: id, payload: binPayload{shape: rest[1], data: rest[2:]}}, true
}
