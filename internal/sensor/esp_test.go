package sensor

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/event"
	"sensorcer/internal/registry"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/spot"
)

var epoch = time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC)

func replayESP(name string, series ...float64) *ESP {
	return NewESP(name, probe.NewReplayProbe(name, "temperature", "celsius", series, true, nil))
}

func TestRingStoreBasics(t *testing.T) {
	s := NewRingStore(3)
	if _, ok := s.Latest(); ok {
		t.Fatal("empty store reported latest")
	}
	for i := 1; i <= 5; i++ {
		s.Add(probe.Reading{Value: float64(i)})
	}
	if s.Len() != 3 || s.Total() != 5 {
		t.Fatalf("Len=%d Total=%d", s.Len(), s.Total())
	}
	latest, _ := s.Latest()
	if latest.Value != 5 {
		t.Fatalf("latest = %v", latest.Value)
	}
	last := s.LastN(0)
	if len(last) != 3 || last[0].Value != 3 || last[2].Value != 5 {
		t.Fatalf("LastN = %v", last)
	}
	if got := s.LastN(2); len(got) != 2 || got[0].Value != 4 {
		t.Fatalf("LastN(2) = %v", got)
	}
	if NewRingStore(0).buf == nil {
		t.Fatal("zero capacity not defaulted")
	}
}

// Property: after k adds, LastN returns min(k, cap) readings ending with
// the most recent, in order.
func TestPropertyRingStoreWindow(t *testing.T) {
	f := func(capacity, adds uint8) bool {
		capn := int(capacity%16) + 1
		k := int(adds % 64)
		s := NewRingStore(capn)
		for i := 1; i <= k; i++ {
			s.Add(probe.Reading{Value: float64(i)})
		}
		want := k
		if want > capn {
			want = capn
		}
		got := s.LastN(0)
		if len(got) != want {
			return false
		}
		for i := range got {
			if got[i].Value != float64(k-want+i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestESPOnDemandGetValue(t *testing.T) {
	e := replayESP("Neem-Sensor", 20, 21, 22)
	defer e.Close()
	for _, want := range []float64{20, 21, 22} {
		r, err := e.GetValue()
		if err != nil {
			t.Fatal(err)
		}
		if r.Value != want || r.Sensor != "Neem-Sensor" {
			t.Fatalf("reading = %+v, want %v", r, want)
		}
	}
	if e.Store().Len() != 3 {
		t.Fatal("on-demand reads not stored")
	}
}

func TestESPGetReadings(t *testing.T) {
	e := replayESP("x", 1, 2, 3)
	defer e.Close()
	for i := 0; i < 3; i++ {
		e.GetValue()
	}
	got := e.GetReadings(2)
	if len(got) != 2 || got[0].Value != 2 || got[1].Value != 3 {
		t.Fatalf("GetReadings = %v", got)
	}
}

func TestESPDescribe(t *testing.T) {
	e := replayESP("Neem-Sensor", 1)
	defer e.Close()
	info := e.Describe()
	if info.Name != "Neem-Sensor" || info.Kind != "temperature" || info.Unit != "celsius" {
		t.Fatalf("Describe = %+v", info)
	}
}

func TestESPBackgroundSampling(t *testing.T) {
	e := NewESP("bg", probe.NewReplayProbe("bg", "k", "u", []float64{1, 2, 3, 4, 5}, true, nil),
		WithSampleInterval(time.Millisecond), WithStoreCapacity(128))
	defer e.Close()
	e.Start()
	e.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for e.Store().Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Store().Len() < 3 {
		t.Fatal("background sampling produced nothing")
	}
	e.Stop()
	n := e.Store().Len()
	time.Sleep(20 * time.Millisecond)
	if e.Store().Len() != n {
		t.Fatal("sampling continued after Stop")
	}
	// Sampled ESP GetValue returns stored reading.
	r, err := e.GetValue()
	if err != nil || r.Value == 0 {
		t.Fatalf("GetValue = %v, %v", r, err)
	}
}

func TestESPSamplingFiresEvents(t *testing.T) {
	e := NewESP("ev", probe.NewReplayProbe("ev", "k", "u", []float64{1}, true, nil),
		WithSampleInterval(time.Millisecond))
	defer e.Close()
	got := make(chan event.RemoteEvent, 64)
	e.Events().Register(EventReadingUpdate, event.ListenerFunc(func(ev event.RemoteEvent) error {
		select {
		case got <- ev:
		default:
		}
		return nil
	}), time.Hour)
	e.Start()
	select {
	case ev := <-got:
		if r, ok := ev.Payload.(probe.Reading); !ok || r.Sensor != "ev" {
			t.Fatalf("payload = %+v", ev.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no reading event")
	}
}

func TestESPDeadProbeError(t *testing.T) {
	dev := spot.NewDevice(spot.Config{Name: "d", BatteryMicroJ: 1}) // dies immediately
	dev.Attach(spot.ConstantModel{Value: 1, KindName: "temperature"})
	e := NewESP("dead", probe.NewSpotProbe("dead", dev, "temperature", nil))
	defer e.Close()
	e.GetValue() // first read may succeed or fail depending on budget
	_, err := e.GetValue()
	if err == nil {
		_, err = e.GetValue()
	}
	if !errors.Is(err, spot.ErrBatteryDead) {
		t.Fatalf("err = %v", err)
	}
}

func newSensorRig(t *testing.T) (*discovery.Manager, *registry.LookupService, *sorcer.Exerter) {
	t.Helper()
	bus := discovery.NewBus()
	lus := registry.New("lus", clockwork.NewFake(epoch))
	cancel := bus.Announce(lus)
	mgr := discovery.NewManager(bus)
	t.Cleanup(func() { mgr.Terminate(); cancel(); lus.Close() })
	return mgr, lus, sorcer.NewExerter(sorcer.NewAccessor(mgr))
}

func TestESPPublishAndLookup(t *testing.T) {
	mgr, lus, _ := newSensorRig(t)
	e := replayESP("Neem-Sensor", 21.5)
	defer e.Close()
	join := e.Publish(clockwork.Real(), mgr, attr.Location("CP TTU", "3", "310"))
	defer join.Terminate()

	item, err := lus.LookupOne(registry.ByName("Neem-Sensor", AccessorType))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := item.Attributes.Find(attr.TypeLocation); !ok {
		t.Fatal("extra attributes not registered")
	}
	st, _ := item.Attributes.Find(attr.TypeServiceType)
	if v, _ := st.Get("category"); v != CategoryElementary {
		t.Fatalf("category = %v", v)
	}
	acc, ok := item.Service.(DataAccessor)
	if !ok {
		t.Fatal("proxy is not a DataAccessor")
	}
	r, err := acc.GetValue()
	if err != nil || r.Value != 21.5 {
		t.Fatalf("via-registry read = %v, %v", r, err)
	}
}

func TestESPServicerGetValue(t *testing.T) {
	mgr, _, exerter := newSensorRig(t)
	e := replayESP("Neem-Sensor", 23.25)
	defer e.Close()
	join := e.Publish(clockwork.Real(), mgr)
	defer join.Terminate()

	sig := sorcer.Signature{ServiceType: AccessorType, Selector: SelGetValue, ProviderName: "Neem-Sensor"}
	task := sorcer.NewTask("read", sig, nil)
	res, err := exerter.Exert(task, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Context().Float(PathValue)
	if err != nil || v != 23.25 {
		t.Fatalf("exerted value = %v, %v", v, err)
	}
	if name, _ := res.Context().StringAt(PathName); name != "Neem-Sensor" {
		t.Fatalf("name = %v", name)
	}
}

func TestESPServicerGetReadingsAndInfo(t *testing.T) {
	e := replayESP("x", 1, 2, 3)
	defer e.Close()
	for i := 0; i < 3; i++ {
		e.GetValue()
	}
	task := sorcer.NewTask("readings",
		sorcer.Signature{ServiceType: AccessorType, Selector: SelGetReadings},
		sorcer.NewContextFrom(PathCount, 2.0))
	if _, err := e.Service(task, nil); err != nil {
		t.Fatal(err)
	}
	vals, _ := task.Context().Get(PathReadings)
	if got := vals.([]float64); len(got) != 2 || got[1] != 3 {
		t.Fatalf("readings = %v", got)
	}

	info := sorcer.NewTask("info", sorcer.Signature{ServiceType: AccessorType, Selector: SelGetInfo}, nil)
	if _, err := e.Service(info, nil); err != nil {
		t.Fatal(err)
	}
	if k, _ := info.Context().StringAt(PathKind); k != "temperature" {
		t.Fatalf("kind = %v", k)
	}
}

func TestESPServicerErrors(t *testing.T) {
	e := replayESP("x", 1)
	defer e.Close()
	// Wrong exertion kind.
	if _, err := e.Service(sorcer.NewJob("j", sorcer.Strategy{}), nil); !errors.Is(err, sorcer.ErrNotTask) {
		t.Fatalf("err = %v", err)
	}
	// Wrong service type.
	badType := sorcer.NewTask("t", sorcer.Sig("Other", SelGetValue), nil)
	if _, err := e.Service(badType, nil); !errors.Is(err, sorcer.ErrWrongType) {
		t.Fatalf("err = %v", err)
	}
	// Unknown selector fails the task.
	badSel := sorcer.NewTask("t", sorcer.Sig(AccessorType, "nope"), nil)
	if _, err := e.Service(badSel, nil); !errors.Is(err, sorcer.ErrUnknownSelector) {
		t.Fatalf("err = %v", err)
	}
	if badSel.Status() != sorcer.Failed {
		t.Fatalf("status = %v", badSel.Status())
	}
	// Probe failure surfaces through the exertion.
	exhausted := NewESP("e", probe.NewReplayProbe("e", "k", "u", nil, false, nil))
	defer exhausted.Close()
	failing := sorcer.NewTask("t", sorcer.Sig(AccessorType, SelGetValue), nil)
	if _, err := exhausted.Service(failing, nil); err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("err = %v", err)
	}
}

func TestESPLeaseDepartureFromRegistry(t *testing.T) {
	// Plug-and-play departure: terminating the join removes the sensor.
	mgr, lus, _ := newSensorRig(t)
	e := replayESP("gone", 1)
	defer e.Close()
	join := e.Publish(clockwork.Real(), mgr)
	if _, err := lus.LookupOne(registry.ByName("gone")); err != nil {
		t.Fatal("not registered")
	}
	join.Terminate()
	if _, err := lus.LookupOne(registry.ByName("gone")); err == nil {
		t.Fatal("still registered after departure")
	}
}

// clockworkFake builds a fake clock at the shared test epoch.
func clockworkFake() *clockwork.Fake { return clockwork.NewFake(epoch) }

func TestESPHealthFromSpotBattery(t *testing.T) {
	dev := spot.NewDevice(spot.Config{Name: "d", BatteryMicroJ: 100})
	dev.Attach(spot.ConstantModel{Value: 1, KindName: "temperature"})
	e := NewESP("d", probe.NewSpotProbe("d", dev, "temperature", nil))
	defer e.Close()
	level, ok := e.Health()
	if !ok || level != 1 {
		t.Fatalf("fresh health = %v, %v", level, ok)
	}
	e.GetValue() // drains
	level2, _ := e.Health()
	if level2 >= level {
		t.Fatalf("health did not decrease: %v -> %v", level, level2)
	}
	// getInfo exposes health in the exertion context.
	task := sorcer.NewTask("i", sorcer.Sig(AccessorType, SelGetInfo), nil)
	if _, err := e.Service(task, nil); err != nil {
		t.Fatal(err)
	}
	h, err := task.Context().Float(PathHealth)
	if err != nil || h != level2 {
		t.Fatalf("context health = %v, %v", h, err)
	}
}

func TestESPHealthUnavailableForReplay(t *testing.T) {
	e := replayESP("r", 1)
	defer e.Close()
	if _, ok := e.Health(); ok {
		t.Fatal("replay probe reported health")
	}
	task := sorcer.NewTask("i", sorcer.Sig(AccessorType, SelGetInfo), nil)
	e.Service(task, nil)
	if _, found := task.Context().Get(PathHealth); found {
		t.Fatal("health path set without a reporter")
	}
}
