package sensor

import (
	"errors"
	"strings"
	"testing"
	"time"

	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/sorcer"
)

// faultyAccessor always fails its reads.
type faultyAccessor struct{ name string }

func (f *faultyAccessor) SensorName() string { return f.name }
func (f *faultyAccessor) GetValue() (probe.Reading, error) {
	return probe.Reading{}, errors.New("sensor hardware gone")
}
func (f *faultyAccessor) GetReadings(int) []probe.Reading { return nil }
func (f *faultyAccessor) Describe() probe.Info            { return probe.Info{Name: f.name} }

func TestCSPQuorumSurvivesFailedComponent(t *testing.T) {
	c := NewCSP("c", WithQuorum(2))
	for _, cfg := range []struct {
		name string
		v    float64
	}{{"s1", 10}, {"s2", 20}} {
		e := replayESP(cfg.name, cfg.v)
		defer e.Close()
		if _, err := c.AddChild(e); err != nil {
			t.Fatal(err)
		}
	}
	c.AddChild(&faultyAccessor{name: "dead"})

	r, err := c.GetValue()
	if err != nil {
		t.Fatalf("quorum read failed: %v", err)
	}
	// Average of the two survivors, not of three.
	if r.Value != 15 {
		t.Fatalf("value = %v, want 15", r.Value)
	}
	q, ok := c.ReadQuality()
	if !ok || !q.Degraded || q.Responded != 2 || q.Composed != 3 {
		t.Fatalf("quality = %+v %v", q, ok)
	}
	if len(q.Missing) != 1 || q.Missing[0] != "dead" {
		t.Fatalf("missing = %v", q.Missing)
	}
	if !strings.Contains(q.String(), "degraded 2/3") {
		t.Fatalf("annotation = %q", q.String())
	}
}

func TestCSPQuorumNotMet(t *testing.T) {
	c := NewCSP("c", WithQuorum(2))
	e := replayESP("s1", 10)
	defer e.Close()
	c.AddChild(e)
	c.AddChild(&faultyAccessor{name: "dead-1"})
	c.AddChild(&faultyAccessor{name: "dead-2"})
	if _, err := c.GetValue(); !errors.Is(err, ErrQuorum) {
		t.Fatalf("err = %v, want ErrQuorum", err)
	}
}

func TestCSPWithoutQuorumStaysStrict(t *testing.T) {
	c := NewCSP("c")
	e := replayESP("s1", 10)
	defer e.Close()
	c.AddChild(e)
	c.AddChild(&faultyAccessor{name: "dead"})
	if _, err := c.GetValue(); err == nil {
		t.Fatal("strict composite must fail on any component error")
	}
}

func TestCSPQuorumExpressionFallsBackToAverage(t *testing.T) {
	c := NewCSP("c", WithQuorum(1))
	a := replayESP("s1", 10)
	defer a.Close()
	c.AddChild(a)                           // a
	c.AddChild(&faultyAccessor{name: "s2"}) // b, dead
	if err := c.SetExpression("a + b"); err != nil {
		t.Fatal(err)
	}
	r, err := c.GetValue()
	if err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	// "b" is unbound, so the expression is abandoned for the survivors'
	// average.
	if r.Value != 10 {
		t.Fatalf("value = %v, want survivors' average 10", r.Value)
	}
}

func TestCSPQuorumExpressionOverSurvivors(t *testing.T) {
	c := NewCSP("c", WithQuorum(1))
	a := replayESP("s1", 10)
	defer a.Close()
	c.AddChild(a)                           // a
	c.AddChild(&faultyAccessor{name: "s2"}) // b, dead
	if err := c.SetExpression("a * 3"); err != nil {
		t.Fatal(err)
	}
	r, err := c.GetValue()
	if err != nil {
		t.Fatal(err)
	}
	// The expression only uses surviving variables, so it still runs.
	if r.Value != 30 {
		t.Fatalf("value = %v, want 30", r.Value)
	}
}

func TestCSPQuorumTimedOutChildDegrades(t *testing.T) {
	c := NewCSP("c", WithQuorum(1), WithReadTimeout(40*time.Millisecond))
	e := replayESP("fast", 7)
	defer e.Close()
	c.AddChild(e)
	slow := &slowAccessor{name: "slow", release: make(chan struct{})}
	defer close(slow.release)
	c.AddChild(slow)

	r, err := c.GetValue()
	if err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if r.Value != 7 {
		t.Fatalf("value = %v, want the fast child's 7", r.Value)
	}
	q, _ := c.ReadQuality()
	if !q.Degraded || len(q.Missing) != 1 || q.Missing[0] != "slow" {
		t.Fatalf("quality = %+v", q)
	}
}

func TestServeAccessorStampsQualityAnnotation(t *testing.T) {
	c := NewCSP("q-composite", WithQuorum(1))
	e := replayESP("s1", 5)
	defer e.Close()
	c.AddChild(e)
	c.AddChild(&faultyAccessor{name: "dead"})

	task := sorcer.NewTask("read", sorcer.Sig(AccessorType, SelGetValue), nil)
	res, err := c.Service(task, nil)
	if err != nil {
		t.Fatal(err)
	}
	ann, _ := res.Context().Get(PathQuality)
	s, _ := ann.(string)
	if !strings.Contains(s, "degraded 1/2") || !strings.Contains(s, "dead") {
		t.Fatalf("annotation = %q", s)
	}
	if v, err := res.Context().Float(PathValue); err != nil || v != 5 {
		t.Fatalf("value = %v, %v", v, err)
	}
}
