package sensor

import (
	"math"
	"testing"

	"sensorcer/internal/sensor/probe"
)

// fixedAccessor is an allocation-free DataAccessor for exercising the
// CSP's slot-bound read path in isolation.
type fixedAccessor struct {
	name string
	val  float64
	unit string
	hist []float64
}

func (f *fixedAccessor) SensorName() string { return f.name }
func (f *fixedAccessor) GetValue() (probe.Reading, error) {
	return probe.Reading{Sensor: f.name, Kind: "temperature", Unit: f.unit, Value: f.val}, nil
}
func (f *fixedAccessor) GetReadings(n int) []probe.Reading {
	if n <= 0 || n > len(f.hist) {
		n = len(f.hist)
	}
	out := make([]probe.Reading, n)
	for i, v := range f.hist[len(f.hist)-n:] {
		out[i] = probe.Reading{Sensor: f.name, Value: v, Unit: f.unit}
	}
	return out
}
func (f *fixedAccessor) AppendValues(dst []float64, n int) []float64 {
	if n <= 0 || n > len(f.hist) {
		n = len(f.hist)
	}
	return append(dst, f.hist[len(f.hist)-n:]...)
}
func (f *fixedAccessor) Describe() probe.Info {
	return probe.Info{Name: f.name, Kind: "temperature", Unit: f.unit}
}

func fastCSP(t *testing.T, src string, vals ...float64) *CSP {
	t.Helper()
	c := NewCSP("fast", WithSequentialReads())
	for i, v := range vals {
		acc := &fixedAccessor{name: varName(i) + "-sensor", val: v, unit: "celsius", hist: []float64{v - 1, v, v + 1}}
		if _, err := c.AddChild(acc); err != nil {
			t.Fatal(err)
		}
	}
	if src != "" {
		if err := c.SetExpression(src); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestCSPSlotBindingRebinds asserts Bind happens at mutation time and
// tracks child changes: an expression set before its variables exist
// binds as soon as the children arrive, and re-binds after removal.
func TestCSPSlotBindingRebinds(t *testing.T) {
	c := NewCSP("rebind", WithSequentialReads())
	if err := c.SetExpression("a + b"); err != nil {
		t.Fatal(err)
	}
	if c.boundProgram() != nil {
		t.Fatal("bound with zero children")
	}
	a := &fixedAccessor{name: "s-a", val: 1, unit: "c"}
	b := &fixedAccessor{name: "s-b", val: 2, unit: "c"}
	if _, err := c.AddChild(a); err != nil {
		t.Fatal(err)
	}
	if c.boundProgram() != nil {
		t.Fatal("bound with one child for a two-variable expression")
	}
	if _, err := c.AddChild(b); err != nil {
		t.Fatal(err)
	}
	if c.boundProgram() == nil {
		t.Fatal("not bound once both variables exist")
	}
	r, err := c.GetValue()
	if err != nil || r.Value != 3 {
		t.Fatalf("GetValue = (%v, %v), want 3", r.Value, err)
	}
	if err := c.RemoveChild("s-b"); err != nil {
		t.Fatal(err)
	}
	if c.boundProgram() != nil {
		t.Fatal("still bound after losing a referenced child")
	}
	if _, err := c.GetValue(); err == nil {
		t.Fatal("want unbound-variable error after removal")
	}
}

func (c *CSP) boundProgram() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bound == nil {
		return nil
	}
	return c.bound
}

// TestCSPFastPathMatchesEnvSemantics cross-checks composite values
// computed through the slot-bound fast path against direct evaluation of
// the same expression — the CSP-level differential.
func TestCSPFastPathMatchesEnvSemantics(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"(a + b + c) / 3", (10.0 + 20 + 60) / 3},
		{"a - avg(a_hist)", 10 - (9.0 + 10 + 11) / 3},
		{"max(values) - min(values)", 50},
		{"a > b ? a : b", 20},
		{"clamp(sum(a, b), 0, 25)", 25},
		{"stddev(values) > 5 ? avg(values) : a", 30},
	}
	for _, tc := range cases {
		t.Run(tc.src, func(t *testing.T) {
			c := fastCSP(t, tc.src, 10, 20, 60)
			if c.boundProgram() == nil {
				t.Fatalf("expression %q did not take the fast path", tc.src)
			}
			r, err := c.GetValue()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(r.Value-tc.want) > 1e-9 {
				t.Fatalf("value = %v, want %v", r.Value, tc.want)
			}
		})
	}
}

// TestCSPReadPathAllocationFree is the satellite acceptance: steady-state
// sequential composite reads allocate nothing — on the expressionless
// default-average path AND on the slot-bound expression path (history
// included).
func TestCSPReadPathAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; allocs/op is covered by the non-race run")
	}
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"default-average", ""},
		{"expression", "(a + b + c) / 3"},
		{"expression-hist", "a - avg(a_hist)"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := fastCSP(t, tc.src, 10, 20, 60)
			if _, err := c.GetValue(); err != nil { // warm the scratch pool
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := c.GetValue(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("GetValue (%s): %v allocs/op, want 0", tc.name, allocs)
			}
		})
	}
}
