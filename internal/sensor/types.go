// Package sensor implements the SenSORCER framework itself — the paper's
// contribution (§V): elementary sensor providers (ESPs) wrapping probes,
// composite sensor providers (CSPs) that aggregate other sensor services
// with runtime compute-expressions, the SenSORCER Façade with its sensor
// network manager, the service accessor, and the Rio-backed sensor service
// provisioner. Every provider implements the common SensorDataAccessor
// interface and the SORCER Servicer interface, so sensors participate both
// in direct P2P reads and in exertion federations.
package sensor

import (
	"sync"

	"sensorcer/internal/sensor/probe"
)

// Registry type names under which sensor services register.
const (
	// AccessorType is the common SensorDataAccessor interface name.
	AccessorType = "SensorDataAccessor"
	// FacadeType marks SenSORCER façade services.
	FacadeType = "SensorcerFacade"
)

// Service categories shown in the browser (SorcerServiceType entry of the
// paper's Fig. 2: "Service Type:: COMPOSITE").
const (
	CategoryElementary = "ELEMENTARY"
	CategoryComposite  = "COMPOSITE"
	CategoryFacade     = "FACADE"
)

// Exertion selectors every sensor provider serves.
const (
	SelGetValue    = "getValue"
	SelGetReadings = "getReadings"
	SelGetInfo     = "getInfo"
)

// Context paths used by sensor exertions.
const (
	PathValue     = "sensor/value"
	PathUnit      = "sensor/unit"
	PathKind      = "sensor/kind"
	PathName      = "sensor/name"
	PathTimestamp = "sensor/timestamp"
	PathCount     = "sensor/count"
	PathReadings  = "sensor/readings"
	PathHealth    = "sensor/health"
	// PathQuality carries the data-quality annotation of a composite read
	// ("full 4/4" or "degraded 3/4 (missing: ...)"); see Quality.
	PathQuality = "sensor/quality"
)

// DataAccessor is the paper's SensorDataAccessor: the uniform
// data-aggregation interface every sensor service (elementary or
// composite) exposes to requestors — the answer to motivation #6 ("no
// uniform data-aggregation interface availability").
type DataAccessor interface {
	// SensorName returns the service name.
	SensorName() string
	// GetValue returns the current (most recent) reading.
	GetValue() (probe.Reading, error)
	// GetReadings returns up to n recent readings, oldest first.
	GetReadings(n int) []probe.Reading
	// Describe reports the sensor's kind/unit/technology.
	Describe() probe.Info
}

// ValueHistory is implemented by accessors whose recent values can be
// appended into a caller-owned buffer without allocating per call — the
// CSP's float64 fast path uses it to bind "<var>_hist" windows. Accessors
// without it fall back to GetReadings.
type ValueHistory interface {
	// AppendValues appends up to n recent values (oldest first) to dst
	// and returns the extended slice.
	AppendValues(dst []float64, n int) []float64
}

// RingStore is the ESP's local reading buffer: "the service provided by
// the single sensor should be capable of storing data to the local store"
// (§III-B). Fixed capacity, oldest evicted first.
type RingStore struct {
	mu   sync.RWMutex
	buf  []probe.Reading
	pos  int
	n    int
	seen uint64
}

// NewRingStore creates a store holding up to capacity readings.
func NewRingStore(capacity int) *RingStore {
	if capacity <= 0 {
		capacity = 64
	}
	return &RingStore{buf: make([]probe.Reading, capacity)}
}

// Add appends a reading, evicting the oldest at capacity.
func (s *RingStore) Add(r probe.Reading) {
	s.mu.Lock()
	s.buf[s.pos] = r
	s.pos = (s.pos + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.seen++
	s.mu.Unlock()
}

// Latest returns the most recent reading.
func (s *RingStore) Latest() (probe.Reading, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.n == 0 {
		return probe.Reading{}, false
	}
	idx := (s.pos - 1 + len(s.buf)) % len(s.buf)
	return s.buf[idx], true
}

// LastN returns up to n recent readings, oldest first.
func (s *RingStore) LastN(n int) []probe.Reading {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n <= 0 || n > s.n {
		n = s.n
	}
	out := make([]probe.Reading, n)
	start := (s.pos - n + len(s.buf)) % len(s.buf)
	for i := 0; i < n; i++ {
		out[i] = s.buf[(start+i)%len(s.buf)]
	}
	return out
}

// AppendValues appends up to n recent values (oldest first) to dst and
// returns the extended slice — the allocation-free complement of LastN
// for callers that only need the numeric series.
func (s *RingStore) AppendValues(dst []float64, n int) []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n <= 0 || n > s.n {
		n = s.n
	}
	start := (s.pos - n + len(s.buf)) % len(s.buf)
	for i := 0; i < n; i++ {
		dst = append(dst, s.buf[(start+i)%len(s.buf)].Value)
	}
	return dst
}

// Len reports the number of stored readings.
func (s *RingStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// Total reports how many readings have ever been added.
func (s *RingStore) Total() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seen
}
