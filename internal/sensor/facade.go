package sensor

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/ids"
	"sensorcer/internal/registry"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/sorcer"
)

// ServiceEntry is one row of the network's service list — what the Inca X
// browser shows in the paper's Fig. 2.
type ServiceEntry struct {
	ID         ids.ServiceID
	Name       string
	Category   string // ELEMENTARY / COMPOSITE / FACADE / "" (infrastructure)
	Types      []string
	Attributes attr.Set
}

// ErrUnknownService is returned when a named sensor service cannot be
// found in any lookup service.
var ErrUnknownService = errors.New("sensor: unknown service")

// ErrNotComposite is returned for composite-management operations on
// non-composite services.
var ErrNotComposite = errors.New("sensor: service is not a composite")

// ErrNotOwned is returned when removing a service this manager did not
// create.
var ErrNotOwned = errors.New("sensor: service not managed here")

// NetworkManager provides the paper's sensor-network-management facility
// (§V-A "Network Management: the facility provided by the specialized
// façade service, to add and remove sensor nodes, subnets, and create
// dynamic grouping"). All operations address services by name and act
// through the lookup services, so the semantics of managing the whole
// network reduce to managing individual CSPs.
type NetworkManager struct {
	clock    clockwork.Clock
	mgr      *discovery.Manager
	accessor *sorcer.Accessor

	mu          sync.Mutex
	owned       map[string]*managedService
	provisioner *Provisioner
	exporter    ProxyExporter
}

// ProxyExporter turns a locally created sensor service into the proxy
// object to register in lookup services. In-process deployments need none
// (the accessor itself is the proxy); cross-process deployments install
// remote.AccessorExporter so composites created here are reachable from
// other processes (the returned object implements both DataAccessor and
// the remote Describer).
type ProxyExporter func(name string, acc DataAccessor) any

type managedService struct {
	csp  *CSP
	join *discovery.Join
}

// NewNetworkManager creates a manager over the discovery manager's
// registrar set.
func NewNetworkManager(clock clockwork.Clock, mgr *discovery.Manager) *NetworkManager {
	return &NetworkManager{
		clock:    clock,
		mgr:      mgr,
		accessor: sorcer.NewAccessor(mgr),
		owned:    make(map[string]*managedService),
	}
}

// AttachProvisioner wires in the Rio-backed sensor service provisioner,
// enabling ProvisionComposite.
func (nm *NetworkManager) AttachProvisioner(p *Provisioner) {
	nm.mu.Lock()
	nm.provisioner = p
	nm.mu.Unlock()
}

// SetExporter installs the proxy exporter for locally created composites.
func (nm *NetworkManager) SetExporter(fn ProxyExporter) {
	nm.mu.Lock()
	nm.exporter = fn
	nm.mu.Unlock()
}

// FindAccessor resolves a sensor service by name to its DataAccessor. The
// lookup requires only the AccessorType registration: remote accessor
// stubs are DataAccessors without being Servicers, and direct P2P reads do
// not need the exertion surface.
func (nm *NetworkManager) FindAccessor(name string) (DataAccessor, error) {
	tmpl := registry.ByName(name, AccessorType)
	for _, reg := range nm.mgr.Registrars() {
		item, err := reg.LookupOne(tmpl)
		if err != nil {
			continue
		}
		acc, ok := item.Service.(DataAccessor)
		if !ok {
			return nil, fmt.Errorf("sensor: %q registered without a DataAccessor proxy", name)
		}
		return acc, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownService, name)
}

// GetValue reads the named sensor service.
func (nm *NetworkManager) GetValue(name string) (probe.Reading, error) {
	acc, err := nm.FindAccessor(name)
	if err != nil {
		return probe.Reading{}, err
	}
	return acc.GetValue()
}

// findCSP resolves a named service and requires it to be a composite.
// Owned composites resolve directly (their registered proxy may be an
// export wrapper rather than the *CSP itself).
func (nm *NetworkManager) findCSP(name string) (*CSP, error) {
	nm.mu.Lock()
	if ms, ok := nm.owned[name]; ok {
		nm.mu.Unlock()
		return ms.csp, nil
	}
	nm.mu.Unlock()
	acc, err := nm.FindAccessor(name)
	if err != nil {
		return nil, err
	}
	csp, ok := acc.(*CSP)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotComposite, name)
	}
	return csp, nil
}

// ComposeService creates a composite from named component services, with
// an optional compute-expression, and publishes it to the network — the
// paper's §VI steps 1–2 ("formed a sensor subnet with three elementary
// sensor services; associated a compute-expression").
func (nm *NetworkManager) ComposeService(name string, children []string, expression string) (*CSP, error) {
	if name == "" {
		return nil, errors.New("sensor: composite needs a name")
	}
	if _, err := nm.FindAccessor(name); err == nil {
		return nil, fmt.Errorf("sensor: service %q already exists", name)
	}
	csp := NewCSP(name, WithCSPClock(nm.clock))
	for _, childName := range children {
		acc, err := nm.FindAccessor(childName)
		if err != nil {
			return nil, fmt.Errorf("sensor: composing %q: %w", name, err)
		}
		if _, err := csp.AddChild(acc); err != nil {
			return nil, err
		}
	}
	if err := csp.SetExpression(expression); err != nil {
		return nil, err
	}
	nm.mu.Lock()
	exporter := nm.exporter
	nm.mu.Unlock()
	var join *discovery.Join
	if exporter == nil {
		join = csp.Publish(nm.clock, nm.mgr)
	} else {
		// Export the composite so remote registrars can carry it too.
		item := registry.ServiceItem{
			ID:      csp.ID(),
			Service: exporter(name, csp),
			Types:   []string{AccessorType},
			Attributes: attr.Set{
				attr.Name(name),
				attr.ServiceType(CategoryComposite),
				attr.ServiceInfo("SenSORCER", "CSP", "1.0"),
			},
		}
		join = discovery.NewJoin(nm.clock, nm.mgr, item)
	}
	nm.mu.Lock()
	nm.owned[name] = &managedService{csp: csp, join: join}
	nm.mu.Unlock()
	return csp, nil
}

// ComposeByTemplate creates a composite over every sensor service whose
// attributes match the template — the paper's "dynamic grouping" (§V-A):
// e.g. group all temperature sensors in building "CP TTU" without naming
// them. Matching services are composed in name order so variable bindings
// are stable; the expression may be empty (default average).
func (nm *NetworkManager) ComposeByTemplate(name string, template attr.Set, expression string) (*CSP, int, error) {
	seen := map[string]bool{}
	var members []string
	tmpl := registry.Template{Types: []string{AccessorType}, Attributes: template}
	for _, reg := range nm.mgr.Registrars() {
		for _, item := range reg.Lookup(tmpl, 0) {
			n := attr.NameOf(item.Attributes)
			if n == "" || seen[n] || n == name {
				continue
			}
			seen[n] = true
			members = append(members, n)
		}
	}
	sort.Strings(members)
	if len(members) == 0 {
		return nil, 0, fmt.Errorf("%w: no sensor matches template %v", ErrUnknownService, template)
	}
	csp, err := nm.ComposeService(name, members, expression)
	if err != nil {
		return nil, 0, err
	}
	return csp, len(members), nil
}

// AddToComposite composes an additional named service into a composite,
// returning the bound variable name.
func (nm *NetworkManager) AddToComposite(composite, child string) (string, error) {
	csp, err := nm.findCSP(composite)
	if err != nil {
		return "", err
	}
	acc, err := nm.FindAccessor(child)
	if err != nil {
		return "", err
	}
	return csp.AddChild(acc)
}

// RemoveFromComposite removes a component service from a composite.
func (nm *NetworkManager) RemoveFromComposite(composite, child string) error {
	csp, err := nm.findCSP(composite)
	if err != nil {
		return err
	}
	return csp.RemoveChild(child)
}

// SetExpression installs a compute-expression on a composite.
func (nm *NetworkManager) SetExpression(composite, expression string) error {
	csp, err := nm.findCSP(composite)
	if err != nil {
		return err
	}
	return csp.SetExpression(expression)
}

// CompositeInfo reports a composite's children and expression (the
// "Sensor Service Information" panel of Fig. 2).
func (nm *NetworkManager) CompositeInfo(name string) ([]ChildInfo, string, error) {
	csp, err := nm.findCSP(name)
	if err != nil {
		return nil, "", err
	}
	return csp.Children(), csp.Expression(), nil
}

// RemoveService withdraws a composite this manager created.
func (nm *NetworkManager) RemoveService(name string) error {
	nm.mu.Lock()
	ms, ok := nm.owned[name]
	if ok {
		delete(nm.owned, name)
	}
	nm.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotOwned, name)
	}
	ms.join.Terminate()
	return nil
}

// ProvisionComposite deploys a new composite through the Rio provisioner
// onto a capable cybernode — the paper's §VI step 3 ("provisioned a new
// composite service on to the network").
func (nm *NetworkManager) ProvisionComposite(name string, children []string, expression string, qos QoSSpec) error {
	nm.mu.Lock()
	p := nm.provisioner
	nm.mu.Unlock()
	if p == nil {
		return errors.New("sensor: no provisioner attached")
	}
	return p.ProvisionComposite(name, children, expression, qos)
}

// UnprovisionComposite withdraws a provisioned composite.
func (nm *NetworkManager) UnprovisionComposite(name string) error {
	nm.mu.Lock()
	p := nm.provisioner
	nm.mu.Unlock()
	if p == nil {
		return errors.New("sensor: no provisioner attached")
	}
	return p.Unprovision(name)
}

// ScaleComposite rescales a provisioned composite to n instances.
func (nm *NetworkManager) ScaleComposite(name string, n int) error {
	nm.mu.Lock()
	p := nm.provisioner
	nm.mu.Unlock()
	if p == nil {
		return errors.New("sensor: no provisioner attached")
	}
	return p.Scale(name, n)
}

// Facade is the SenSORCER Façade: "the single entry point of the
// SenSORCER system" (§V-B). The sensor browser attaches to it; it exposes
// the service list and delegates management to its NetworkManager.
type Facade struct {
	id      ids.ServiceID
	name    string
	clock   clockwork.Clock
	mgr     *discovery.Manager
	network *NetworkManager
}

// NewFacade creates a façade over the discovery manager.
func NewFacade(name string, clock clockwork.Clock, mgr *discovery.Manager) *Facade {
	return &Facade{
		id:      ids.NewServiceID(),
		name:    name,
		clock:   clock,
		mgr:     mgr,
		network: NewNetworkManager(clock, mgr),
	}
}

// ID returns the façade identity.
func (f *Facade) ID() ids.ServiceID { return f.id }

// Name returns the façade name.
func (f *Facade) Name() string { return f.name }

// Network returns the management interface.
func (f *Facade) Network() *NetworkManager { return f.network }

// ListServices snapshots every service registered in every discovered
// lookup service, deduplicated, sorted by name — the browser's service
// tree.
func (f *Facade) ListServices() []ServiceEntry {
	seen := map[ids.ServiceID]bool{}
	var out []ServiceEntry
	for _, reg := range f.mgr.Registrars() {
		for _, item := range reg.Lookup(registry.Template{}, 0) {
			if seen[item.ID] {
				continue
			}
			seen[item.ID] = true
			out = append(out, entryFromItem(item))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].ID.String() < out[j].ID.String()
	})
	return out
}

func entryFromItem(item registry.ServiceItem) ServiceEntry {
	e := ServiceEntry{
		ID:         item.ID,
		Name:       attr.NameOf(item.Attributes),
		Types:      item.Types,
		Attributes: item.Attributes,
	}
	if st, ok := item.Attributes.Find(attr.TypeServiceType); ok {
		if v, ok := st.Get("category"); ok {
			e.Category, _ = v.(string)
		}
	}
	return e
}

// SensorEntries filters ListServices to sensor services only.
func (f *Facade) SensorEntries() []ServiceEntry {
	var out []ServiceEntry
	for _, e := range f.ListServices() {
		for _, t := range e.Types {
			if t == AccessorType {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// Publish joins the façade itself to the lookup services, so browsers can
// find it ("SenSORCER Facade" in Fig. 2's service list). The façade is not
// a Servicer; it registers under FacadeType with itself as the proxy.
func (f *Facade) Publish(extra ...attr.Entry) *discovery.Join {
	attrs := attr.Set{
		attr.Name(f.name),
		attr.ServiceType(CategoryFacade),
		attr.ServiceInfo("SenSORCER", "Facade", "1.0"),
		attr.Comment("SenSORCER Facade"),
	}
	attrs = append(attrs, extra...)
	item := registry.ServiceItem{
		ID:         f.id,
		Service:    f,
		Types:      []string{FacadeType},
		Attributes: attrs,
	}
	return discovery.NewJoin(f.clock, f.mgr, item)
}
