//go:build !race

package sensor

const raceEnabled = false
