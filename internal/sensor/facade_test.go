package sensor

import (
	"errors"
	"sensorcer/internal/attr"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/registry"
	"sensorcer/internal/rio"
)

// facadeRig assembles a full single-process SenSORCER deployment: one LUS,
// a discovery manager, four paper-named ESPs, a façade, two cybernodes and
// a provision monitor.
type facadeRig struct {
	bus       *discovery.Bus
	lus       *registry.LookupService
	mgr       *discovery.Manager
	facade    *Facade
	esps      []*ESP
	joins     []*discovery.Join
	monitor   *rio.Monitor
	nodes     []*rio.Cybernode
	factories *rio.FactoryRegistry
}

func newFacadeRig(t *testing.T, sensorValues map[string]float64) *facadeRig {
	t.Helper()
	r := &facadeRig{bus: discovery.NewBus(), factories: rio.NewFactoryRegistry()}
	r.lus = registry.New("persimmon.cs.ttu.edu:4160", clockwork.NewFake(epoch))
	cancel := r.bus.Announce(r.lus)
	r.mgr = discovery.NewManager(r.bus)

	for name, v := range sensorValues {
		e := replayESP(name, v)
		r.esps = append(r.esps, e)
		r.joins = append(r.joins, e.Publish(clockwork.Real(), r.mgr))
	}

	r.facade = NewFacade("SenSORCER Facade", clockwork.Real(), r.mgr)
	r.joins = append(r.joins, r.facade.Publish())

	r.monitor = rio.NewMonitor(clockwork.Real(), nil)
	p := NewProvisioner(r.monitor, r.factories, clockwork.Real(), r.mgr, r.facade.Network().FindAccessor)
	r.facade.Network().AttachProvisioner(p)
	for _, name := range []string{"Cybernode-1", "Cybernode-2"} {
		node := rio.NewCybernode(name, rio.Capability{CPUs: 4, MemoryMB: 4096}, r.factories)
		r.nodes = append(r.nodes, node)
		if _, err := r.monitor.RegisterCybernode(node, time.Minute); err != nil {
			t.Fatal(err)
		}
	}

	t.Cleanup(func() {
		for _, j := range r.joins {
			j.Terminate()
		}
		for _, e := range r.esps {
			e.Close()
		}
		r.monitor.Close()
		r.mgr.Terminate()
		cancel()
		r.lus.Close()
	})
	return r
}

var paperSensors = map[string]float64{
	"Neem-Sensor":    20,
	"Jade-Sensor":    22,
	"Diamond-Sensor": 24,
	"Coral-Sensor":   26,
}

func TestFacadeListServices(t *testing.T) {
	r := newFacadeRig(t, paperSensors)
	entries := r.facade.ListServices()
	byName := map[string]ServiceEntry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	for name := range paperSensors {
		e, ok := byName[name]
		if !ok {
			t.Fatalf("%s missing from service list", name)
		}
		if e.Category != CategoryElementary {
			t.Fatalf("%s category = %q", name, e.Category)
		}
	}
	if byName["SenSORCER Facade"].Category != CategoryFacade {
		t.Fatal("facade not listed")
	}
	sensors := r.facade.SensorEntries()
	if len(sensors) != 4 {
		t.Fatalf("SensorEntries = %d, want 4", len(sensors))
	}
}

func TestNetworkManagerGetValue(t *testing.T) {
	r := newFacadeRig(t, paperSensors)
	reading, err := r.facade.Network().GetValue("Jade-Sensor")
	if err != nil || reading.Value != 22 {
		t.Fatalf("GetValue = %v, %v", reading, err)
	}
	if _, err := r.facade.Network().GetValue("ghost"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v", err)
	}
}

func TestComposeServicePublishesComposite(t *testing.T) {
	r := newFacadeRig(t, paperSensors)
	nm := r.facade.Network()
	csp, err := nm.ComposeService("Composite-Service",
		[]string{"Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"}, "(a + b + c)/3")
	if err != nil {
		t.Fatal(err)
	}
	if got := csp.Expression(); got != "(a + b + c)/3" {
		t.Fatalf("expression = %q", got)
	}
	// Readable via the network by name.
	reading, err := nm.GetValue("Composite-Service")
	if err != nil || reading.Value != 22 {
		t.Fatalf("composite read = %v, %v", reading, err)
	}
	// And visible in the browser list as COMPOSITE.
	for _, e := range r.facade.ListServices() {
		if e.Name == "Composite-Service" && e.Category == CategoryComposite {
			return
		}
	}
	t.Fatal("composite not listed")
}

func TestComposeServiceValidation(t *testing.T) {
	r := newFacadeRig(t, paperSensors)
	nm := r.facade.Network()
	if _, err := nm.ComposeService("", nil, ""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := nm.ComposeService("c", []string{"ghost"}, ""); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v", err)
	}
	if _, err := nm.ComposeService("Neem-Sensor", nil, ""); err == nil {
		t.Fatal("name collision accepted")
	}
	if _, err := nm.ComposeService("c", []string{"Neem-Sensor"}, "(bad"); err == nil {
		t.Fatal("bad expression accepted")
	}
}

func TestCompositeManagementByName(t *testing.T) {
	r := newFacadeRig(t, paperSensors)
	nm := r.facade.Network()
	nm.ComposeService("grp", []string{"Neem-Sensor"}, "")
	v, err := nm.AddToComposite("grp", "Coral-Sensor")
	if err != nil || v != "b" {
		t.Fatalf("AddToComposite = %q, %v", v, err)
	}
	if err := nm.SetExpression("grp", "(a + b)/2"); err != nil {
		t.Fatal(err)
	}
	kids, expr, err := nm.CompositeInfo("grp")
	if err != nil || len(kids) != 2 || expr != "(a + b)/2" {
		t.Fatalf("CompositeInfo = %v, %q, %v", kids, expr, err)
	}
	reading, err := nm.GetValue("grp")
	if err != nil || reading.Value != 23 {
		t.Fatalf("value = %v, %v", reading, err)
	}
	if err := nm.RemoveFromComposite("grp", "Neem-Sensor"); err != nil {
		t.Fatal(err)
	}
	// The old expression references the removed variable; reset to the
	// default average before reading again.
	if err := nm.SetExpression("grp", ""); err != nil {
		t.Fatal(err)
	}
	reading, err = nm.GetValue("grp")
	if err != nil || reading.Value != 26 {
		t.Fatalf("after removal = %v, %v", reading.Value, err)
	}
	// Management ops on elementary services are rejected.
	if _, err := nm.AddToComposite("Neem-Sensor", "Coral-Sensor"); !errors.Is(err, ErrNotComposite) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoveService(t *testing.T) {
	r := newFacadeRig(t, paperSensors)
	nm := r.facade.Network()
	nm.ComposeService("tmp", []string{"Neem-Sensor"}, "")
	if err := nm.RemoveService("tmp"); err != nil {
		t.Fatal(err)
	}
	if _, err := nm.GetValue("tmp"); !errors.Is(err, ErrUnknownService) {
		t.Fatal("service still resolvable after removal")
	}
	if err := nm.RemoveService("Neem-Sensor"); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("err = %v", err)
	}
}

func TestProvisionComposite(t *testing.T) {
	r := newFacadeRig(t, paperSensors)
	nm := r.facade.Network()
	// The paper's step 3-5: provision New-Composite with QoS, compose.
	nm.ComposeService("Composite-Service",
		[]string{"Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"}, "(a + b + c)/3")
	err := nm.ProvisionComposite("New-Composite",
		[]string{"Composite-Service", "Coral-Sensor"}, "(a + b)/2", QoSSpec{MinCPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	reading, err := nm.GetValue("New-Composite")
	if err != nil {
		t.Fatal(err)
	}
	if reading.Value != 24 { // ((20+22+24)/3 + 26)/2
		t.Fatalf("provisioned composite = %v", reading.Value)
	}
	// It landed on exactly one cybernode.
	hosted := 0
	for _, n := range r.nodes {
		hosted += len(n.Services())
	}
	if hosted != 1 {
		t.Fatalf("hosted on %d nodes", hosted)
	}
	if err := nm.UnprovisionComposite("New-Composite"); err != nil {
		t.Fatal(err)
	}
	if _, err := nm.GetValue("New-Composite"); !errors.Is(err, ErrUnknownService) {
		t.Fatal("provisioned composite survived unprovision")
	}
}

func TestProvisionedCompositeFailover(t *testing.T) {
	// §IV-C fault tolerance: kill the hosting cybernode; the service is
	// re-provisioned on the survivor and keeps answering by name.
	r := newFacadeRig(t, paperSensors)
	nm := r.facade.Network()
	if err := nm.ProvisionComposite("HA-Composite",
		[]string{"Neem-Sensor", "Coral-Sensor"}, "(a + b)/2", QoSSpec{}); err != nil {
		t.Fatal(err)
	}
	victim := r.nodes[0]
	if len(victim.Services()) == 0 {
		victim = r.nodes[1]
	}
	victim.Kill()

	reading, err := nm.GetValue("HA-Composite")
	if err != nil {
		t.Fatalf("service lost after node death: %v", err)
	}
	if reading.Value != 23 {
		t.Fatalf("failover value = %v", reading.Value)
	}
}

func TestProvisionWithUnsatisfiableQoSStaysPending(t *testing.T) {
	r := newFacadeRig(t, paperSensors)
	nm := r.facade.Network()
	if err := nm.ProvisionComposite("picky",
		[]string{"Neem-Sensor"}, "", QoSSpec{MinCPUs: 64}); err != nil {
		t.Fatal(err)
	}
	if _, err := nm.GetValue("picky"); err == nil {
		t.Fatal("unsatisfiable QoS still provisioned")
	}
	// A big-enough node arrives: pending element provisions.
	big := rio.NewCybernode("big", rio.Capability{CPUs: 128}, r.factories)
	if _, err := r.monitor.RegisterCybernode(big, time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := nm.GetValue("picky"); err != nil {
		t.Fatalf("pending composite never provisioned: %v", err)
	}
}

func TestProvisionerWithoutAttachment(t *testing.T) {
	mgr, _, _ := newSensorRig(t)
	nm := NewNetworkManager(clockwork.Real(), mgr)
	if err := nm.ProvisionComposite("x", nil, "", QoSSpec{}); err == nil {
		t.Fatal("provision without provisioner accepted")
	}
	if err := nm.UnprovisionComposite("x"); err == nil {
		t.Fatal("unprovision without provisioner accepted")
	}
}

func TestComposeByTemplate(t *testing.T) {
	r := newFacadeRig(t, paperSensors)
	nm := r.facade.Network()
	// All four are temperature sensors: dynamic grouping by SensorType.
	csp, n, err := nm.ComposeByTemplate("all-temps",
		attr.Set{attr.New(attr.TypeSensorType, "kind", "temperature")}, "")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || len(csp.Children()) != 4 {
		t.Fatalf("grouped %d sensors", n)
	}
	// Members are bound in name order: Coral, Diamond, Jade, Neem.
	kids := csp.Children()
	if kids[0].Name != "Coral-Sensor" || kids[3].Name != "Neem-Sensor" {
		t.Fatalf("ordering = %v", kids)
	}
	reading, err := nm.GetValue("all-temps")
	if err != nil || reading.Value != 23 { // (20+22+24+26)/4
		t.Fatalf("group value = %v, %v", reading.Value, err)
	}
	// No match -> error.
	if _, _, err := nm.ComposeByTemplate("none",
		attr.Set{attr.New(attr.TypeSensorType, "kind", "vibration")}, ""); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v", err)
	}
}

func TestComposeByTemplateExcludesSelfName(t *testing.T) {
	r := newFacadeRig(t, paperSensors)
	nm := r.facade.Network()
	// First group everything; the group itself is a COMPOSITE so a second
	// template over ELEMENTARY must not include it.
	if _, _, err := nm.ComposeByTemplate("g1",
		attr.Set{attr.ServiceType(CategoryElementary)}, ""); err != nil {
		t.Fatal(err)
	}
	_, n, err := nm.ComposeByTemplate("g2",
		attr.Set{attr.ServiceType(CategoryElementary)}, "")
	if err != nil || n != 4 {
		t.Fatalf("second grouping = %d, %v", n, err)
	}
}

func TestScaleComposite(t *testing.T) {
	r := newFacadeRig(t, paperSensors)
	nm := r.facade.Network()
	if err := nm.ProvisionComposite("scaled",
		[]string{"Neem-Sensor"}, "", QoSSpec{}); err != nil {
		t.Fatal(err)
	}
	if err := nm.ScaleComposite("scaled", 3); err != nil {
		t.Fatal(err)
	}
	hosted := 0
	for _, n := range r.nodes {
		hosted += len(n.Services())
	}
	if hosted != 3 {
		t.Fatalf("hosted = %d after scale-up, want 3", hosted)
	}
	if err := nm.ScaleComposite("scaled", 1); err != nil {
		t.Fatal(err)
	}
	hosted = 0
	for _, n := range r.nodes {
		hosted += len(n.Services())
	}
	if hosted != 1 {
		t.Fatalf("hosted = %d after scale-down, want 1", hosted)
	}
	// Still answers by name.
	if _, err := nm.GetValue("scaled"); err != nil {
		t.Fatal(err)
	}
	if err := nm.ScaleComposite("ghost", 2); err == nil {
		t.Fatal("scaling unknown composite accepted")
	}
}
