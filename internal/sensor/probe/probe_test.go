package probe

import (
	"errors"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/sensor/calib"
	"sensorcer/internal/spot"
)

var epoch = time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC)

func TestSpotProbeReadsDevice(t *testing.T) {
	fc := clockwork.NewFake(epoch)
	dev := spot.NewDevice(spot.Config{Name: "Neem", Clock: fc})
	dev.Attach(spot.ConstantModel{Value: 21.5, UnitName: "celsius", KindName: "temperature"})
	p := NewSpotProbe("Neem-Sensor", dev, "temperature", nil)

	info := p.Info()
	if info.Name != "Neem-Sensor" || info.Technology != "sunspot" || info.Unit != "celsius" {
		t.Fatalf("Info = %+v", info)
	}
	r, err := p.Read()
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 21.5 || r.Sensor != "Neem-Sensor" || !r.Timestamp.Equal(epoch) {
		t.Fatalf("Reading = %+v", r)
	}
}

func TestSpotProbeCalibration(t *testing.T) {
	dev := spot.NewDevice(spot.Config{Name: "x"})
	dev.Attach(spot.ConstantModel{Value: 100, KindName: "temperature"})
	p := NewSpotProbe("x", dev, "temperature", calib.Chain{calib.Linear{Gain: 0.5, Offset: 1}})
	r, err := p.Read()
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 51 {
		t.Fatalf("calibrated = %v", r.Value)
	}
}

func TestSpotProbeUnitInference(t *testing.T) {
	dev := spot.NewDevice(spot.Config{Name: "x"})
	for kind, unit := range map[string]string{
		"temperature": "celsius", "humidity": "percent", "light": "lux", "vibration": "unknown",
	} {
		p := NewSpotProbe("x", dev, kind, nil)
		if got := p.Info().Unit; got != unit {
			t.Fatalf("unit for %s = %q", kind, got)
		}
	}
}

func TestSpotProbePropagatesDeviceErrors(t *testing.T) {
	dev := spot.NewDevice(spot.Config{Name: "x"})
	p := NewSpotProbe("x", dev, "temperature", nil) // no sensor attached
	if _, err := p.Read(); !errors.Is(err, spot.ErrNoSensor) {
		t.Fatalf("err = %v", err)
	}
}

func TestProbeClose(t *testing.T) {
	dev := spot.NewDevice(spot.Config{Name: "x"})
	dev.Attach(spot.ConstantModel{Value: 1, KindName: "temperature"})
	probes := []Probe{
		NewSpotProbe("a", dev, "temperature", nil),
		NewSyntheticProbe("b", spot.ConstantModel{Value: 1, KindName: "k", UnitName: "u"}, nil, nil),
		NewReplayProbe("c", "k", "u", []float64{1}, true, nil),
	}
	for _, p := range probes {
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Read(); !errors.Is(err, ErrClosed) {
			t.Fatalf("%s: read after close err = %v", p.Info().Name, err)
		}
	}
}

func TestSyntheticProbe(t *testing.T) {
	fc := clockwork.NewFake(epoch)
	model := spot.NewTemperatureModel(20, 0, 0, 0, 1)
	p := NewSyntheticProbe("Synth", model, fc, calib.Chain{calib.Linear{Offset: 2}})
	info := p.Info()
	if info.Technology != "synthetic" || info.Kind != "temperature" {
		t.Fatalf("Info = %+v", info)
	}
	r, err := p.Read()
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 22 {
		t.Fatalf("value = %v", r.Value)
	}
}

func TestReplayProbeSequenceAndLoop(t *testing.T) {
	p := NewReplayProbe("r", "temperature", "celsius", []float64{1, 2, 3}, true, nil)
	for pass := 0; pass < 2; pass++ {
		for _, want := range []float64{1, 2, 3} {
			r, err := p.Read()
			if err != nil || r.Value != want {
				t.Fatalf("pass %d: %v, %v", pass, r.Value, err)
			}
		}
	}
}

func TestReplayProbeExhaustion(t *testing.T) {
	p := NewReplayProbe("r", "k", "u", []float64{1}, false, nil)
	p.Read()
	if _, err := p.Read(); !errors.Is(err, ErrReplayExhausted) {
		t.Fatalf("err = %v", err)
	}
	empty := NewReplayProbe("e", "k", "u", nil, true, nil)
	if _, err := empty.Read(); !errors.Is(err, ErrReplayExhausted) {
		t.Fatalf("empty looped err = %v", err)
	}
}

func TestReplayProbeSeriesCopied(t *testing.T) {
	series := []float64{7}
	p := NewReplayProbe("r", "k", "u", series, true, nil)
	series[0] = 99
	r, _ := p.Read()
	if r.Value != 7 {
		t.Fatal("replay probe shares caller's slice")
	}
}

func TestMultiProbeFusesMembers(t *testing.T) {
	a := NewReplayProbe("a", "temperature", "celsius", []float64{20}, true, nil)
	b := NewReplayProbe("b", "temperature", "celsius", []float64{24}, true, nil)
	m, err := NewMultiProbe("cluster", 0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Read()
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 22 || r.Sensor != "cluster" {
		t.Fatalf("fused reading = %+v", r)
	}
	info := m.Info()
	if info.Kind != "temperature" || info.Technology != "multi(replay)" {
		t.Fatalf("Info = %+v", info)
	}
}

func TestMultiProbeQuorum(t *testing.T) {
	good := NewReplayProbe("g", "temperature", "celsius", []float64{20}, true, nil)
	dead := NewReplayProbe("d", "temperature", "celsius", nil, false, nil)
	// Quorum 1: tolerate the dead member.
	m, err := NewMultiProbe("cluster", 1, good, dead)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Read()
	if err != nil || r.Value != 20 {
		t.Fatalf("quorum-1 read = %+v, %v", r, err)
	}
	// Quorum 2 (default all): the dead member fails the read.
	m2, _ := NewMultiProbe("strict", 0, good, dead)
	if _, err := m2.Read(); err == nil {
		t.Fatal("quorum violation accepted")
	}
}

func TestMultiProbeValidation(t *testing.T) {
	if _, err := NewMultiProbe("x", 0); err == nil {
		t.Fatal("empty multi-probe accepted")
	}
	temp := NewReplayProbe("t", "temperature", "celsius", []float64{1}, true, nil)
	hum := NewReplayProbe("h", "humidity", "percent", []float64{1}, true, nil)
	if _, err := NewMultiProbe("x", 0, temp, hum); err == nil {
		t.Fatal("mixed-kind multi-probe accepted")
	}
}

func TestMultiProbeClose(t *testing.T) {
	a := NewReplayProbe("a", "temperature", "celsius", []float64{1}, true, nil)
	b := NewReplayProbe("b", "temperature", "celsius", []float64{1}, true, nil)
	m, _ := NewMultiProbe("c", 0, a, b)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close err = %v", err)
	}
	// Members are closed too.
	if _, err := a.Read(); !errors.Is(err, ErrClosed) {
		t.Fatal("member not closed")
	}
}

func TestMultiProbeTechDedup(t *testing.T) {
	a := NewReplayProbe("a", "k", "u", []float64{1}, true, nil)
	b := NewReplayProbe("b", "k", "u", []float64{2}, true, nil)
	s := NewSyntheticProbe("s", spot.ConstantModel{Value: 3, KindName: "k", UnitName: "u"}, nil, nil)
	m, _ := NewMultiProbe("mix", 0, a, b, s)
	if got := m.Info().Technology; got != "multi(replay+synthetic)" {
		t.Fatalf("Technology = %q", got)
	}
}
