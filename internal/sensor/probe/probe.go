// Package probe defines the sensor probe — per the paper "the only sensor
// dependent component of the framework" (§V-B): it contains the
// device-specific driver code, hides synchronization, timing, protocol and
// calibration concerns, and exposes the uniform DataCollection surface
// (here, the Probe interface) that elementary sensor providers consume.
// Three probes ship: SpotProbe drives a simulated Sun SPOT device,
// SyntheticProbe samples an environment model directly, and ReplayProbe
// replays recorded readings for tests and demos.
package probe

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/sensor/calib"
	"sensorcer/internal/spot"
)

// Reading is one calibrated measurement as it leaves a probe.
type Reading struct {
	// Sensor is the producing sensor's name.
	Sensor string
	// Kind is the quantity ("temperature").
	Kind string
	// Unit is the measurement unit ("celsius").
	Unit string
	// Value is the calibrated value.
	Value float64
	// Timestamp is the sampling instant.
	Timestamp time.Time
}

// Info describes a probe's identity and technology.
type Info struct {
	// Name is the sensor name ("Neem-Sensor").
	Name string
	// Technology identifies the driver ("sunspot", "synthetic", "replay").
	Technology string
	// Kind and Unit describe the measurement.
	Kind string
	Unit string
}

// Probe is the DataCollection interface between an elementary sensor
// provider and a physical sensor. Implementations must be safe for
// concurrent use.
type Probe interface {
	// Info describes the probe.
	Info() Info
	// Read takes one measurement.
	Read() (Reading, error)
	// Close releases the underlying device.
	Close() error
}

// ErrClosed is returned by Read after Close.
var ErrClosed = errors.New("probe: closed")

// HealthReporter is optionally implemented by probes that can report the
// condition of their device — the paper's motivation #2 wants "status
// information of the sensor in place" available remotely. Level is in
// [0, 1] (battery charge for SPOT probes).
type HealthReporter interface {
	Health() (level float64, ok bool)
}

// SpotProbe reads one quantity from a simulated Sun SPOT device, applying
// an optional calibration chain — the paper's experimental configuration.
type SpotProbe struct {
	name   string
	kind   string
	device *spot.Device
	chain  calib.Chain

	mu     sync.Mutex
	closed bool
}

// NewSpotProbe wraps the device's sensor of the given kind.
func NewSpotProbe(name string, device *spot.Device, kind string, chain calib.Chain) *SpotProbe {
	return &SpotProbe{name: name, kind: kind, device: device, chain: chain}
}

// Info implements Probe.
func (p *SpotProbe) Info() Info {
	unit := "unknown"
	// The unit is a property of the measurement kind on SPOT boards.
	switch p.kind {
	case "temperature":
		unit = "celsius"
	case "humidity":
		unit = "percent"
	case "light":
		unit = "lux"
	}
	return Info{Name: p.name, Technology: "sunspot", Kind: p.kind, Unit: unit}
}

// Read implements Probe.
func (p *SpotProbe) Read() (Reading, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return Reading{}, ErrClosed
	}
	v, at, err := p.device.Sample(p.kind)
	if err != nil {
		return Reading{}, fmt.Errorf("probe %q: %w", p.name, err)
	}
	info := p.Info()
	return Reading{
		Sensor:    p.name,
		Kind:      p.kind,
		Unit:      info.Unit,
		Value:     p.chain.Apply(v),
		Timestamp: at,
	}, nil
}

// Close implements Probe.
func (p *SpotProbe) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return nil
}

// Health implements HealthReporter: the device's battery level.
func (p *SpotProbe) Health() (float64, bool) {
	return p.device.Battery().Level(), true
}

// SyntheticProbe samples an environment model directly — a sensor
// technology without a device layer, demonstrating the framework's
// technology independence (§VII: "applications written for sensor data are
// independent of the sensor technology used").
type SyntheticProbe struct {
	name  string
	model spot.EnvironmentModel
	clock clockwork.Clock
	chain calib.Chain

	mu     sync.Mutex
	closed bool
}

// NewSyntheticProbe wraps an environment model.
func NewSyntheticProbe(name string, model spot.EnvironmentModel, clock clockwork.Clock, chain calib.Chain) *SyntheticProbe {
	if clock == nil {
		clock = clockwork.Real()
	}
	return &SyntheticProbe{name: name, model: model, clock: clock, chain: chain}
}

// Info implements Probe.
func (p *SyntheticProbe) Info() Info {
	return Info{Name: p.name, Technology: "synthetic", Kind: p.model.Kind(), Unit: p.model.Unit()}
}

// Read implements Probe.
func (p *SyntheticProbe) Read() (Reading, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return Reading{}, ErrClosed
	}
	now := p.clock.Now()
	return Reading{
		Sensor:    p.name,
		Kind:      p.model.Kind(),
		Unit:      p.model.Unit(),
		Value:     p.chain.Apply(p.model.At(now)),
		Timestamp: now,
	}, nil
}

// Close implements Probe.
func (p *SyntheticProbe) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return nil
}

// ErrReplayExhausted is returned when a non-looping ReplayProbe runs out.
var ErrReplayExhausted = errors.New("probe: replay exhausted")

// ReplayProbe replays a recorded series — the trace-driven "legacy sensor"
// path, and the deterministic workhorse of the test suite.
type ReplayProbe struct {
	name string
	kind string
	unit string
	loop bool

	mu     sync.Mutex
	series []float64
	next   int
	clock  clockwork.Clock
	closed bool
}

// NewReplayProbe replays series values; with loop the series repeats.
func NewReplayProbe(name, kind, unit string, series []float64, loop bool, clock clockwork.Clock) *ReplayProbe {
	if clock == nil {
		clock = clockwork.Real()
	}
	return &ReplayProbe{
		name: name, kind: kind, unit: unit, loop: loop,
		series: append([]float64{}, series...), clock: clock,
	}
}

// Info implements Probe.
func (p *ReplayProbe) Info() Info {
	return Info{Name: p.name, Technology: "replay", Kind: p.kind, Unit: p.unit}
}

// Read implements Probe.
func (p *ReplayProbe) Read() (Reading, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return Reading{}, ErrClosed
	}
	if p.next >= len(p.series) {
		if !p.loop || len(p.series) == 0 {
			return Reading{}, ErrReplayExhausted
		}
		p.next = 0
	}
	v := p.series[p.next]
	p.next++
	return Reading{
		Sensor:    p.name,
		Kind:      p.kind,
		Unit:      p.unit,
		Value:     v,
		Timestamp: p.clock.Now(),
	}, nil
}

// Close implements Probe.
func (p *ReplayProbe) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return nil
}
