package probe

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// MultiProbe fuses several probes behind the single-probe interface — the
// paper's §V-B note that an "ESP can be used to connect multiple sensors,
// if sensors have the ability to connect themselves with other sensors,
// collaborate, and make collected data available to ESP via its
// DataCollection interface". The fusion is a simple mean of the member
// values with configurable minimum quorum: a cluster of co-located devices
// appears as one, more reliable, sensor node.
type MultiProbe struct {
	name   string
	quorum int

	mu      sync.Mutex
	members []Probe
	closed  bool
}

// NewMultiProbe fuses the member probes. quorum is the minimum number of
// members that must answer for a read to succeed (0 = all).
func NewMultiProbe(name string, quorum int, members ...Probe) (*MultiProbe, error) {
	if len(members) == 0 {
		return nil, errors.New("probe: multi-probe needs at least one member")
	}
	kind := members[0].Info().Kind
	for _, m := range members[1:] {
		if m.Info().Kind != kind {
			return nil, fmt.Errorf("probe: multi-probe mixes kinds %q and %q", kind, m.Info().Kind)
		}
	}
	if quorum <= 0 || quorum > len(members) {
		quorum = len(members)
	}
	return &MultiProbe{name: name, quorum: quorum, members: members}, nil
}

// Info implements Probe: the fused identity lists member technologies.
func (p *MultiProbe) Info() Info {
	p.mu.Lock()
	defer p.mu.Unlock()
	techs := make([]string, 0, len(p.members))
	seen := map[string]bool{}
	for _, m := range p.members {
		t := m.Info().Technology
		if !seen[t] {
			seen[t] = true
			techs = append(techs, t)
		}
	}
	first := p.members[0].Info()
	return Info{
		Name:       p.name,
		Technology: "multi(" + strings.Join(techs, "+") + ")",
		Kind:       first.Kind,
		Unit:       first.Unit,
	}
}

// Read implements Probe: member probes are read, failures tolerated down
// to the quorum, and surviving values averaged.
func (p *MultiProbe) Read() (Reading, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return Reading{}, ErrClosed
	}
	members := append([]Probe{}, p.members...)
	quorum := p.quorum
	p.mu.Unlock()

	var sum float64
	var last Reading
	ok := 0
	var firstErr error
	for _, m := range members {
		r, err := m.Read()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sum += r.Value
		last = r
		ok++
	}
	if ok < quorum {
		return Reading{}, fmt.Errorf("probe %q: quorum %d/%d not met: %w", p.name, ok, quorum, firstErr)
	}
	out := last
	out.Sensor = p.name
	out.Value = sum / float64(ok)
	return out, nil
}

// Close implements Probe, closing every member.
func (p *MultiProbe) Close() error {
	p.mu.Lock()
	p.closed = true
	members := p.members
	p.mu.Unlock()
	var firstErr error
	for _, m := range members {
		if err := m.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
