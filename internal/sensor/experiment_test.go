package sensor

import (
	"math"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/registry"
	"sensorcer/internal/rio"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/spot"
)

// TestFig1ComponentWiring asserts the architecture of the paper's Fig. 1
// component diagram: a sensor probe is the only sensor-dependent
// component; the ESP consumes it through the DataCollection (Probe)
// interface; values flow to requestors through SensorDataAccessor; the
// CSP composes accessors; and the façade reaches everything through the
// lookup service.
func TestFig1ComponentWiring(t *testing.T) {
	fc := clockwork.NewFake(epoch)

	// Layer 1: device + probe (sensor-dependent).
	device := spot.NewDevice(spot.Config{Name: "Neem", Clock: fc})
	device.Attach(spot.ConstantModel{Value: 21, UnitName: "celsius", KindName: "temperature"})
	var p probe.Probe = probe.NewSpotProbe("Neem-Sensor", device, "temperature", nil)

	// Layer 2: ESP consumes only the Probe interface.
	esp := NewESP("Neem-Sensor", p)
	defer esp.Close()
	var acc DataAccessor = esp // uniform interface upward

	// Layer 3: CSP consumes only DataAccessor — it cannot tell an ESP
	// from a nested CSP, which is the point.
	csp := NewCSP("Composite-Service")
	if _, err := csp.AddChild(acc); err != nil {
		t.Fatal(err)
	}
	var compositeAcc DataAccessor = csp

	// Layer 4: façade reaches services only via lookup.
	bus := discovery.NewBus()
	lus := registry.New("lus", fc)
	defer lus.Close()
	defer bus.Announce(lus)()
	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()
	defer esp.Publish(clockwork.Real(), mgr).Terminate()
	defer csp.Publish(clockwork.Real(), mgr).Terminate()

	facade := NewFacade("SenSORCER Facade", clockwork.Real(), mgr)
	reading, err := facade.Network().GetValue("Composite-Service")
	if err != nil || reading.Value != 21 {
		t.Fatalf("facade read = %v, %v", reading, err)
	}
	_ = compositeAcc

	// Both provider kinds are Servicers (exertion participation).
	for _, svc := range []sorcer.Servicer{esp, csp} {
		task := sorcer.NewTask("read", sorcer.Sig(AccessorType, SelGetValue), nil)
		if _, err := svc.Service(task, nil); err != nil {
			t.Fatalf("%T not exertable: %v", svc, err)
		}
	}
}

// TestFig3PaperExperiment reproduces §VI steps 1–6 end to end on simulated
// SPOT hardware, asserting the algebra of the two expressions.
func TestFig3PaperExperiment(t *testing.T) {
	fc := clockwork.NewFake(epoch)

	// Deployment of Fig. 2: one LUS, Rio monitor with two cybernodes,
	// four SPOT temperature sensors as ESPs, one façade.
	bus := discovery.NewBus()
	lus := registry.New("persimmon.cs.ttu.edu:4160", fc)
	defer lus.Close()
	defer bus.Announce(lus)()
	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()

	fleet := spot.NewFleet(4, fc, 2009)
	values := map[string]float64{}
	for _, dev := range fleet {
		name := dev.Name() + "-Sensor"
		esp := NewESP(name, probe.NewSpotProbe(name, dev, "temperature", nil))
		defer esp.Close()
		defer esp.Publish(clockwork.Real(), mgr).Terminate()
		r, err := esp.GetValue()
		if err != nil {
			t.Fatal(err)
		}
		values[name] = r.Value
	}

	facade := NewFacade("SenSORCER Facade", clockwork.Real(), mgr)
	defer facade.Publish().Terminate()
	nm := facade.Network()

	factories := rio.NewFactoryRegistry()
	monitor := rio.NewMonitor(clockwork.Real(), nil)
	defer monitor.Close()
	nm.AttachProvisioner(NewProvisioner(monitor, factories, clockwork.Real(), mgr, nm.FindAccessor))
	for _, name := range []string{"Cybernode-1", "Cybernode-2"} {
		if _, err := monitor.RegisterCybernode(rio.NewCybernode(name, rio.Capability{CPUs: 4}, factories), time.Minute); err != nil {
			t.Fatal(err)
		}
	}

	// Step 1: subnet of Neem, Jade, Diamond under Composite-Service.
	// Step 2: expression "(a + b + c)/3".
	if _, err := nm.ComposeService("Composite-Service",
		[]string{"Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"}, "(a + b + c)/3"); err != nil {
		t.Fatal(err)
	}

	// Step 3: provision New-Composite via Rio.
	// Step 4: compose {Composite-Service, Coral-Sensor}.
	// Step 5: expression "(a + b)/2".
	if err := nm.ProvisionComposite("New-Composite",
		[]string{"Composite-Service", "Coral-Sensor"}, "(a + b)/2", QoSSpec{MinCPUs: 1}); err != nil {
		t.Fatal(err)
	}

	// Step 6: read Sensor Value from the provisioned composite.
	reading, err := nm.GetValue("New-Composite")
	if err != nil {
		t.Fatal(err)
	}

	// The sensors re-sample on each read, so recompute expected algebra
	// from fresh reads is not possible; instead verify against the
	// composite algebra with a generous tolerance derived from the noise
	// model (AR(1) noise stays well within ±2).
	subnetMean := (values["Neem-Sensor"] + values["Jade-Sensor"] + values["Diamond-Sensor"]) / 3
	expected := (subnetMean + values["Coral-Sensor"]) / 2
	if math.Abs(reading.Value-expected) > 2.5 {
		t.Fatalf("New-Composite = %v, expected near %v", reading.Value, expected)
	}
	if reading.Sensor != "New-Composite" || reading.Unit != "" {
		// Units: inner composite reports celsius-uniform children but
		// the outer mixes composite+celsius, so unit is cleared.
		t.Logf("reading = %+v", reading)
	}

	// The provisioned service is visible in the service list (Fig. 3
	// shows New-Composite registered with the lookup service).
	found := false
	for _, e := range facade.ListServices() {
		if e.Name == "New-Composite" && e.Category == CategoryComposite {
			found = true
		}
	}
	if !found {
		t.Fatal("New-Composite not visible in the service list")
	}
}

// TestChurnPlugAndPlay exercises the §VII plug-and-play claim under churn:
// sensors join and leave repeatedly; the network's view stays consistent.
func TestChurnPlugAndPlay(t *testing.T) {
	mgr, lus, _ := newSensorRig(t)
	facade := NewFacade("f", clockwork.Real(), mgr)

	for round := 0; round < 5; round++ {
		var joins []*discovery.Join
		var esps []*ESP
		for i := 0; i < 8; i++ {
			name := []string{"A", "B", "C", "D", "E", "F", "G", "H"}[i]
			e := replayESP(name, float64(i))
			esps = append(esps, e)
			joins = append(joins, e.Publish(clockwork.Real(), mgr))
		}
		if got := len(facade.SensorEntries()); got != 8 {
			t.Fatalf("round %d: %d sensors visible, want 8", round, got)
		}
		// Half leave gracefully.
		for i := 0; i < 4; i++ {
			joins[i].Terminate()
		}
		if got := len(facade.SensorEntries()); got != 4 {
			t.Fatalf("round %d: %d sensors after departures, want 4", round, got)
		}
		for i := 4; i < 8; i++ {
			joins[i].Terminate()
		}
		for _, e := range esps {
			e.Close()
		}
		if lus.Len() != 0 {
			t.Fatalf("round %d: registry not empty: %d", round, lus.Len())
		}
	}
}
