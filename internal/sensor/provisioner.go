package sensor

import (
	"errors"
	"fmt"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/rio"
)

// CompositeBeanType is the Rio bean factory key for provisioned composite
// sensor services.
const CompositeBeanType = "sensorcer/composite"

// QoSSpec restates the Rio QoS surface at the sensor API level, so façade
// clients do not import rio directly.
type QoSSpec struct {
	MinCPUs        int
	MinMemoryMB    int
	Arch           string
	Labels         map[string]string
	MaxUtilization float64
}

func (q QoSSpec) rio() rio.QoS {
	return rio.QoS{
		MinCPUs:        q.MinCPUs,
		MinMemory:      q.MinMemoryMB,
		Arch:           q.Arch,
		Labels:         q.Labels,
		MaxUtilization: q.MaxUtilization,
	}
}

// Provisioner is the paper's Sensor Service Provisioner (§V-B): it
// provisions sensor services "based on quality of service specified by
// requestors according to the Rio framework", dynamically allocating a CSP
// to a capable cybernode. It installs a composite bean factory into the
// shared factory registry and translates façade requests into
// OperationalStrings for the provision monitor.
type Provisioner struct {
	monitor *rio.Monitor
	clock   clockwork.Clock
	mgr     *discovery.Manager
	resolve func(name string) (DataAccessor, error)
}

// NewProvisioner creates a sensor service provisioner and registers the
// composite bean factory with the cybernodes' factory registry.
func NewProvisioner(monitor *rio.Monitor, factories *rio.FactoryRegistry, clock clockwork.Clock, mgr *discovery.Manager, resolve func(string) (DataAccessor, error)) *Provisioner {
	p := &Provisioner{monitor: monitor, clock: clock, mgr: mgr, resolve: resolve}
	factories.Register(CompositeBeanType, p.newCompositeBean)
	return p
}

// ProvisionComposite deploys one composite instance matching the QoS.
func (p *Provisioner) ProvisionComposite(name string, children []string, expression string, qos QoSSpec) error {
	if name == "" {
		return errors.New("sensor: provisioned composite needs a name")
	}
	elem := rio.ServiceElement{
		Name: name,
		Type: CompositeBeanType,
		QoS:  qos.rio(),
		Config: map[string]any{
			"name":       name,
			"children":   children,
			"expression": expression,
		},
	}
	return p.monitor.Deploy(rio.OpString{Name: opStringName(name), Elements: []rio.ServiceElement{elem}})
}

// Unprovision withdraws a provisioned composite.
func (p *Provisioner) Unprovision(name string) error {
	return p.monitor.Undeploy(opStringName(name))
}

// Scale rescales a provisioned composite to n instances — the answer to
// the paper's motivation #4 ("no efficient method of handling growing
// number of sensors"): more requestors, more instances, same name.
func (p *Provisioner) Scale(name string, n int) error {
	return p.monitor.SetPlanned(opStringName(name), name, n)
}

// Status reports the deployment state of a provisioned composite.
func (p *Provisioner) Status(name string) ([]rio.ElementStatus, error) {
	return p.monitor.Status(opStringName(name))
}

func opStringName(name string) string { return "sensorcer/" + name }

func (p *Provisioner) newCompositeBean(elem rio.ServiceElement) (rio.Bean, error) {
	name, _ := elem.Config["name"].(string)
	if name == "" {
		return nil, errors.New("sensor: composite bean config missing name")
	}
	var children []string
	switch v := elem.Config["children"].(type) {
	case []string:
		children = v
	case []any: // after a JSON round trip through srpc
		for _, x := range v {
			if s, ok := x.(string); ok {
				children = append(children, s)
			}
		}
	}
	expression, _ := elem.Config["expression"].(string)
	return &compositeBean{
		provisioner: p,
		name:        name,
		children:    children,
		expression:  expression,
	}, nil
}

// compositeBean is the Rio service bean hosting one provisioned CSP: on
// Start it assembles the composite from the named component services and
// publishes it; on Stop (node death or undeploy) it withdraws it. Failover
// works end to end: the monitor re-instantiates the bean on a surviving
// node and the service name reappears in the lookup services.
type compositeBean struct {
	provisioner *Provisioner
	name        string
	children    []string
	expression  string

	csp  *CSP
	join *discovery.Join
}

// Start implements rio.Bean.
func (b *compositeBean) Start(node *rio.Cybernode) error {
	csp := NewCSP(b.name, WithCSPClock(b.provisioner.clock))
	for _, childName := range b.children {
		acc, err := b.provisioner.resolve(childName)
		if err != nil {
			return fmt.Errorf("sensor: provisioning %q: %w", b.name, err)
		}
		if _, err := csp.AddChild(acc); err != nil {
			return err
		}
	}
	if err := csp.SetExpression(b.expression); err != nil {
		return err
	}
	b.csp = csp
	b.join = csp.Publish(b.provisioner.clock, b.provisioner.mgr,
		attr.Comment("provisioned on "+node.Name()))
	return nil
}

// Stop implements rio.Bean.
func (b *compositeBean) Stop() error {
	if b.join != nil {
		b.join.Terminate()
		b.join = nil
	}
	return nil
}
