package sensor

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/sorcer"
)

func TestCSPAverageDefault(t *testing.T) {
	c := NewCSP("Composite-Service")
	for _, cfg := range []struct {
		name string
		v    float64
	}{{"Neem-Sensor", 20}, {"Jade-Sensor", 22}, {"Diamond-Sensor", 24}} {
		e := replayESP(cfg.name, cfg.v)
		defer e.Close()
		if _, err := c.AddChild(e); err != nil {
			t.Fatal(err)
		}
	}
	r, err := c.GetValue()
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 22 || r.Unit != "celsius" || r.Sensor != "Composite-Service" {
		t.Fatalf("reading = %+v", r)
	}
}

func TestCSPValueHook(t *testing.T) {
	c := NewCSP("Composite-Service")
	e := replayESP("Neem-Sensor", 20)
	defer e.Close()
	if _, err := c.AddChild(e); err != nil {
		t.Fatal(err)
	}
	var seen []probe.Reading
	c.SetValueHook(func(r probe.Reading) { seen = append(seen, r) })
	r, err := c.GetValue()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != r {
		t.Fatalf("hook saw %+v, read %+v", seen, r)
	}
	c.SetValueHook(nil)
	if _, err := c.GetValue(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Fatalf("removed hook still fired: %d observations", len(seen))
	}
}

func TestCSPVariableBindingOrder(t *testing.T) {
	c := NewCSP("c")
	names := []string{"s1", "s2", "s3"}
	for i, n := range names {
		e := replayESP(n, float64(i+1))
		defer e.Close()
		v, err := c.AddChild(e)
		if err != nil {
			t.Fatal(err)
		}
		if v != varName(i) {
			t.Fatalf("var for child %d = %q", i, v)
		}
	}
	kids := c.Children()
	if kids[0].Var != "a" || kids[1].Var != "b" || kids[2].Var != "c" {
		t.Fatalf("Children = %v", kids)
	}
	// Use the variables positionally: a=1, b=2, c=3.
	if err := c.SetExpression("a*100 + b*10 + c"); err != nil {
		t.Fatal(err)
	}
	r, err := c.GetValue()
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 123 {
		t.Fatalf("value = %v", r.Value)
	}
}

func TestVarNameOverflow(t *testing.T) {
	if varName(25) != "z" || varName(26) != "v26" || varName(100) != "v100" {
		t.Fatalf("varName sequence broken: %q %q %q", varName(25), varName(26), varName(100))
	}
}

func TestCSPPaperExpression(t *testing.T) {
	// §VI step 2: "(a + b + c)/3" over three sensors.
	c := NewCSP("subnet")
	for _, cfg := range []struct {
		name string
		v    float64
	}{{"Neem-Sensor", 19.5}, {"Jade-Sensor", 21.0}, {"Diamond-Sensor", 22.5}} {
		e := replayESP(cfg.name, cfg.v)
		defer e.Close()
		c.AddChild(e)
	}
	if err := c.SetExpression("(a + b + c)/3"); err != nil {
		t.Fatal(err)
	}
	r, err := c.GetValue()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-21.0) > 1e-12 {
		t.Fatalf("value = %v", r.Value)
	}
	if c.Expression() != "(a + b + c)/3" {
		t.Fatalf("Expression = %q", c.Expression())
	}
}

func TestCSPNestedComposites(t *testing.T) {
	// Fig. 3: a composite of (composite of 3 sensors) and Coral-Sensor
	// with "(a + b)/2".
	inner := NewCSP("Composite-Service")
	for _, cfg := range []struct {
		name string
		v    float64
	}{{"Neem-Sensor", 20}, {"Jade-Sensor", 22}, {"Diamond-Sensor", 24}} {
		e := replayESP(cfg.name, cfg.v)
		defer e.Close()
		inner.AddChild(e)
	}
	inner.SetExpression("(a + b + c)/3") // = 22

	coral := replayESP("Coral-Sensor", 26)
	defer coral.Close()

	outer := NewCSP("New-Composite")
	outer.AddChild(inner)
	outer.AddChild(coral)
	outer.SetExpression("(a + b)/2") // (22 + 26)/2 = 24

	r, err := outer.GetValue()
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 24 {
		t.Fatalf("nested composite = %v", r.Value)
	}
}

func TestCSPValuesListBuiltin(t *testing.T) {
	c := NewCSP("c")
	for i, v := range []float64{5, 10, 30} {
		e := replayESP(varName(i)+"-s", v)
		defer e.Close()
		c.AddChild(e)
	}
	c.SetExpression("max(values) - min(values)")
	r, err := c.GetValue()
	if err != nil || r.Value != 25 {
		t.Fatalf("range = %v, %v", r, err)
	}
}

func TestCSPEmptyFails(t *testing.T) {
	c := NewCSP("empty")
	if _, err := c.GetValue(); !errors.Is(err, ErrNoChildren) {
		t.Fatalf("err = %v", err)
	}
}

func TestCSPRejectsDuplicatesSelfAndNil(t *testing.T) {
	c := NewCSP("c")
	e := replayESP("s", 1)
	defer e.Close()
	if _, err := c.AddChild(e); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddChild(e); err == nil {
		t.Fatal("duplicate child accepted")
	}
	if _, err := c.AddChild(c); err == nil {
		t.Fatal("self-composition accepted")
	}
	if _, err := c.AddChild(nil); err == nil {
		t.Fatal("nil child accepted")
	}
}

func TestCSPRemoveChildRebindsVars(t *testing.T) {
	c := NewCSP("c")
	for i, v := range []float64{1, 2, 3} {
		e := replayESP([]string{"s1", "s2", "s3"}[i], v)
		defer e.Close()
		c.AddChild(e)
	}
	if err := c.RemoveChild("s2"); err != nil {
		t.Fatal(err)
	}
	kids := c.Children()
	if len(kids) != 2 || kids[0].Var != "a" || kids[1].Var != "b" || kids[1].Name != "s3" {
		t.Fatalf("Children = %v", kids)
	}
	c.SetExpression("a*10 + b")
	r, err := c.GetValue()
	if err != nil || r.Value != 13 {
		t.Fatalf("value after rebind = %v, %v", r, err)
	}
	if err := c.RemoveChild("ghost"); err == nil {
		t.Fatal("removing unknown child accepted")
	}
}

func TestCSPBadExpressionRejected(t *testing.T) {
	c := NewCSP("c")
	if err := c.SetExpression("(a +"); err == nil {
		t.Fatal("syntax error accepted")
	}
	// Clearing restores default.
	if err := c.SetExpression(""); err != nil {
		t.Fatal(err)
	}
}

func TestCSPUnboundVariableSurfaces(t *testing.T) {
	c := NewCSP("c")
	e := replayESP("only", 1)
	defer e.Close()
	c.AddChild(e)
	c.SetExpression("a + b") // b unbound (only one child)
	if _, err := c.GetValue(); err == nil || !strings.Contains(err.Error(), "unbound variable") {
		t.Fatalf("err = %v", err)
	}
}

func TestCSPChildFailurePropagates(t *testing.T) {
	c := NewCSP("c")
	ok := replayESP("good", 1)
	defer ok.Close()
	dead := NewESP("dead", probe.NewReplayProbe("dead", "k", "u", nil, false, nil))
	defer dead.Close()
	c.AddChild(ok)
	c.AddChild(dead)
	_, err := c.GetValue()
	if err == nil || !strings.Contains(err.Error(), `"dead"`) {
		t.Fatalf("err = %v", err)
	}
}

func TestCSPMixedUnits(t *testing.T) {
	c := NewCSP("c")
	temp := NewESP("t", probe.NewReplayProbe("t", "temperature", "celsius", []float64{20}, true, nil))
	defer temp.Close()
	hum := NewESP("h", probe.NewReplayProbe("h", "humidity", "percent", []float64{50}, true, nil))
	defer hum.Close()
	c.AddChild(temp)
	c.AddChild(hum)
	r, err := c.GetValue()
	if err != nil {
		t.Fatal(err)
	}
	if r.Unit != "" {
		t.Fatalf("mixed-unit composite unit = %q, want empty", r.Unit)
	}
}

func TestCSPSequentialReads(t *testing.T) {
	c := NewCSP("c", WithSequentialReads())
	for i, v := range []float64{1, 2} {
		e := replayESP([]string{"x", "y"}[i], v)
		defer e.Close()
		c.AddChild(e)
	}
	r, err := c.GetValue()
	if err != nil || r.Value != 1.5 {
		t.Fatalf("sequential read = %v, %v", r, err)
	}
}

// slowAccessor blocks until released.
type slowAccessor struct {
	name    string
	release chan struct{}
}

func (s *slowAccessor) SensorName() string { return s.name }
func (s *slowAccessor) GetValue() (probe.Reading, error) {
	<-s.release
	return probe.Reading{Sensor: s.name, Value: 1}, nil
}
func (s *slowAccessor) GetReadings(int) []probe.Reading { return nil }
func (s *slowAccessor) Describe() probe.Info            { return probe.Info{Name: s.name} }

func TestCSPChildTimeout(t *testing.T) {
	c := NewCSP("c", WithReadTimeout(30*time.Millisecond))
	slow := &slowAccessor{name: "slow", release: make(chan struct{})}
	defer close(slow.release)
	c.AddChild(slow)
	_, err := c.GetValue()
	if !errors.Is(err, ErrChildTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestCSPStoreAndGetReadings(t *testing.T) {
	c := NewCSP("c")
	e := replayESP("s", 10, 20)
	defer e.Close()
	c.AddChild(e)
	c.GetValue()
	c.GetValue()
	got := c.GetReadings(0)
	if len(got) != 2 || got[0].Value != 10 || got[1].Value != 20 {
		t.Fatalf("GetReadings = %v", got)
	}
}

func TestCSPDescribe(t *testing.T) {
	c := NewCSP("c")
	info := c.Describe()
	if info.Technology != "composite" || info.Name != "c" {
		t.Fatalf("Describe = %+v", info)
	}
}

func TestCSPServicer(t *testing.T) {
	c := NewCSP("comp")
	e := replayESP("s", 42)
	defer e.Close()
	c.AddChild(e)
	task := sorcer.NewTask("read", sorcer.Sig(AccessorType, SelGetValue), nil)
	if _, err := c.Service(task, nil); err != nil {
		t.Fatal(err)
	}
	v, err := task.Context().Float(PathValue)
	if err != nil || v != 42 {
		t.Fatalf("exerted composite = %v, %v", v, err)
	}
}

func TestCSPCacheTTL(t *testing.T) {
	fc := clockworkFake()
	c := NewCSP("cached", WithCSPClock(fc), WithCacheTTL(10*time.Second))
	// The replay probe advances its series on every real read; a cache
	// hit leaves the series untouched.
	e := NewESP("s", probe.NewReplayProbe("s", "t", "c", []float64{1, 2, 3}, true, fc))
	defer e.Close()
	c.AddChild(e)

	r1, err := c.GetValue()
	if err != nil || r1.Value != 1 {
		t.Fatalf("first read = %v, %v", r1, err)
	}
	// Within the TTL: cached value, series not consumed.
	fc.Advance(5 * time.Second)
	r2, err := c.GetValue()
	if err != nil || r2.Value != 1 {
		t.Fatalf("cached read = %v, %v", r2, err)
	}
	// Past the TTL: recomputed from the next series value.
	fc.Advance(6 * time.Second)
	r3, err := c.GetValue()
	if err != nil || r3.Value != 2 {
		t.Fatalf("post-TTL read = %v, %v", r3, err)
	}
}

func TestCSPHistoryVariables(t *testing.T) {
	c := NewCSP("trend")
	e := replayESP("s", 10, 20, 60)
	defer e.Close()
	c.AddChild(e)
	// Prime two historical readings directly through the ESP.
	e.GetValue() // 10
	e.GetValue() // 20
	// "a - avg(a_hist)": current (60) minus mean of history window
	// (10, 20, 60 -> 30), i.e. a 30-degree jump.
	if err := c.SetExpression("a - avg(a_hist)"); err != nil {
		t.Fatal(err)
	}
	r, err := c.GetValue()
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 30 {
		t.Fatalf("trend = %v, want 30", r.Value)
	}
}

func TestCSPHistoryLenAndSpike(t *testing.T) {
	c := NewCSP("spike")
	e := replayESP("s", 1, 1, 1, 100)
	defer e.Close()
	c.AddChild(e)
	for i := 0; i < 3; i++ {
		e.GetValue()
	}
	c.SetExpression("a > 2 * avg(a_hist) ? 1 : 0") // spike detector
	r, err := c.GetValue()
	if err != nil || r.Value != 1 {
		t.Fatalf("spike detect = %v, %v", r, err)
	}
	if err := c.SetExpression("len(a_hist)"); err != nil {
		t.Fatal(err)
	}
	r, _ = c.GetValue()
	if r.Value < 4 {
		t.Fatalf("history length = %v", r.Value)
	}
}
