//go:build race

package sensor

// raceEnabled reports that the race detector is instrumenting this build;
// allocation-count assertions are skipped (instrumentation allocates).
const raceEnabled = true
