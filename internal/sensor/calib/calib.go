// Package calib provides data calibration for sensor probes. The paper
// lists calibration among the device-specific concerns a probe hides from
// the framework (§V-B: "communication with any sensor has many aspects
// like synchronization, timing constraints, communication protocol, data
// calibration"). Calibrations compose into chains applied to each raw
// sample before it leaves the probe.
package calib

import "math"

// Calibration transforms one raw sample.
type Calibration interface {
	Apply(raw float64) float64
}

// Chain applies calibrations in order. A nil or empty chain is identity.
type Chain []Calibration

// Apply implements Calibration over the whole chain.
func (c Chain) Apply(raw float64) float64 {
	v := raw
	for _, step := range c {
		v = step.Apply(v)
	}
	return v
}

// Linear applies gain and offset: v' = Gain*v + Offset. Gain 0 is treated
// as the common default 1.
type Linear struct {
	Gain   float64
	Offset float64
}

// Apply implements Calibration.
func (l Linear) Apply(raw float64) float64 {
	gain := l.Gain
	if gain == 0 {
		gain = 1
	}
	return gain*raw + l.Offset
}

// Polynomial evaluates sum(Coeffs[i] * v^i) — arbitrary-order correction
// curves from lab characterization.
type Polynomial struct {
	// Coeffs are ordered from the constant term upward.
	Coeffs []float64
}

// Apply implements Calibration (Horner's method).
func (p Polynomial) Apply(raw float64) float64 {
	if len(p.Coeffs) == 0 {
		return raw
	}
	v := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		v = v*raw + p.Coeffs[i]
	}
	return v
}

// Clamp bounds values to [Lo, Hi] — physical plausibility limits.
type Clamp struct {
	Lo, Hi float64
}

// Apply implements Calibration.
func (c Clamp) Apply(raw float64) float64 {
	return math.Max(c.Lo, math.Min(c.Hi, raw))
}

// MovingAverage smooths the last Window samples (stateful; one probe per
// instance). Window <= 1 is identity.
type MovingAverage struct {
	Window int

	buf []float64
	sum float64
	pos int
	n   int
}

// NewMovingAverage creates a smoother over window samples.
func NewMovingAverage(window int) *MovingAverage {
	return &MovingAverage{Window: window}
}

// Apply implements Calibration.
func (m *MovingAverage) Apply(raw float64) float64 {
	if m.Window <= 1 {
		return raw
	}
	if m.buf == nil {
		m.buf = make([]float64, m.Window)
	}
	if m.n < m.Window {
		m.n++
	} else {
		m.sum -= m.buf[m.pos]
	}
	m.buf[m.pos] = raw
	m.sum += raw
	m.pos = (m.pos + 1) % m.Window
	return m.sum / float64(m.n)
}
