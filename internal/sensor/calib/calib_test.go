package calib

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinear(t *testing.T) {
	l := Linear{Gain: 2, Offset: 1}
	if got := l.Apply(10); got != 21 {
		t.Fatalf("Apply = %v", got)
	}
	// Zero gain defaults to 1 (pure offset correction).
	if got := (Linear{Offset: -0.5}).Apply(10); got != 9.5 {
		t.Fatalf("offset-only = %v", got)
	}
}

func TestPolynomial(t *testing.T) {
	// 1 + 2x + 3x^2 at x=2 -> 17
	p := Polynomial{Coeffs: []float64{1, 2, 3}}
	if got := p.Apply(2); got != 17 {
		t.Fatalf("Apply = %v", got)
	}
	if got := (Polynomial{}).Apply(5); got != 5 {
		t.Fatalf("empty polynomial = %v, want identity", got)
	}
}

func TestClamp(t *testing.T) {
	c := Clamp{Lo: -40, Hi: 85}
	cases := map[float64]float64{-100: -40, 0: 0, 200: 85}
	for in, want := range cases {
		if got := c.Apply(in); got != want {
			t.Fatalf("Clamp(%v) = %v", in, got)
		}
	}
}

func TestMovingAverage(t *testing.T) {
	m := NewMovingAverage(3)
	seq := []float64{3, 6, 9, 12}
	want := []float64{3, 4.5, 6, 9}
	for i, v := range seq {
		if got := m.Apply(v); math.Abs(got-want[i]) > 1e-12 {
			t.Fatalf("step %d: %v, want %v", i, got, want[i])
		}
	}
	// Window <= 1 is identity.
	id := NewMovingAverage(1)
	if got := id.Apply(7); got != 7 {
		t.Fatalf("identity = %v", got)
	}
}

func TestChain(t *testing.T) {
	c := Chain{Linear{Gain: 2}, Linear{Offset: 1}, Clamp{Lo: 0, Hi: 10}}
	if got := c.Apply(3); got != 7 {
		t.Fatalf("chain = %v", got)
	}
	if got := c.Apply(100); got != 10 {
		t.Fatalf("chain clamp = %v", got)
	}
	if got := (Chain{}).Apply(4.2); got != 4.2 {
		t.Fatalf("empty chain = %v", got)
	}
	if got := Chain(nil).Apply(4.2); got != 4.2 {
		t.Fatalf("nil chain = %v", got)
	}
}

// Property: Linear is invertible (gain != 0).
func TestPropertyLinearInvertible(t *testing.T) {
	f := func(gain, offset, x int16) bool {
		g := float64(gain)
		if g == 0 {
			return true
		}
		l := Linear{Gain: g, Offset: float64(offset)}
		y := l.Apply(float64(x))
		back := (y - float64(offset)) / g
		return math.Abs(back-float64(x)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: moving average stays within the min/max of its inputs.
func TestPropertyMovingAverageBounded(t *testing.T) {
	f := func(vals []int8) bool {
		if len(vals) == 0 {
			return true
		}
		m := NewMovingAverage(4)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			x := float64(v)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			got := m.Apply(x)
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
