package sensor

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/expr"
	"sensorcer/internal/ids"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/txn"
)

// ErrNoChildren is returned when reading an empty composite.
var ErrNoChildren = errors.New("sensor: composite has no component services")

// HistoryWindow is how many recent readings a "<var>_hist" expression
// variable carries.
const HistoryWindow = 16

// ErrChildTimeout is returned when a component read exceeds the deadline.
var ErrChildTimeout = errors.New("sensor: component read timed out")

// ErrQuorum is returned when fewer components than the configured quorum
// produced a value.
var ErrQuorum = errors.New("sensor: quorum not met")

// Quality describes how complete the last composite evaluation was — the
// data-quality annotation degraded reads stamp into task contexts.
type Quality struct {
	// Responded is how many components produced a value.
	Responded int
	// Composed is how many components the CSP holds.
	Composed int
	// Degraded reports that at least one component was missing.
	Degraded bool
	// Missing lists the sensor names of the failed components.
	Missing []string
}

// String renders the annotation, e.g. "full 4/4" or
// "degraded 3/4 (missing: rtd-1)".
func (q Quality) String() string {
	if !q.Degraded {
		return fmt.Sprintf("full %d/%d", q.Responded, q.Composed)
	}
	return fmt.Sprintf("degraded %d/%d (missing: %s)",
		q.Responded, q.Composed, strings.Join(q.Missing, ", "))
}

// QualityReporter is implemented by accessors that can qualify their last
// value; serveAccessor stamps the annotation into the task context.
type QualityReporter interface {
	ReadQuality() (Quality, bool)
}

// CSP is the Composite Sensor Provider (§V-B): it composes ESPs and other
// CSPs, collects their values, binds them to runtime variables (a, b, c,
// ... in composition order — §VI: "the variables that are used in the
// expression are created dynamically, as the services are added"), and
// evaluates its compute-expression over them. Because a CSP is itself a
// DataAccessor, composites nest: "CSP's ability to contain other CSPs
// makes logical sensor networking possible", which is exactly Fig. 3's
// two-level network.
type CSP struct {
	id    ids.ServiceID
	name  string
	clock clockwork.Clock
	store *RingStore

	// timeout bounds each composite read (all children in parallel).
	timeout time.Duration
	// sequential forces one-at-a-time child reads (ablation benchmark).
	sequential bool
	// cacheTTL serves repeated reads from the last computed value while
	// it is younger than the TTL (0 = recompute every read).
	cacheTTL time.Duration
	// quorum, when positive, lets reads degrade gracefully: components
	// that error or time out are dropped and the expression evaluates
	// over the survivors, as long as at least quorum of them responded.
	// Zero keeps the strict historical behavior (any failure fails the
	// read).
	quorum int

	mu       sync.Mutex
	children []childBinding
	program  *expr.Program
	// progVars and histWanted are hoisted from the program at SetExpression
	// time — the read path consults them on every evaluation, and a
	// compiled program's variable set never changes.
	progVars   []string
	histWanted map[string]bool
	// bound is the program slot-bound against the current child ordering
	// (recomputed whenever children or expression change); nil when there
	// is no program or the expression needs the generic Env path. Full
	// (non-degraded) reads evaluate it over raw float64 slots with no
	// env construction or boxing.
	bound *expr.BoundProgram
	// histChild[i] reports whether the expression uses child i's history
	// variable; varRefs maps each progVar to the child index of its base
	// variable (-1 unknown, -2 the synthetic "values"), which is what the
	// degraded-read fallback checks instead of building an Env.
	histChild []bool
	varRefs   []int
	// lastQuality qualifies the most recent successful evaluation.
	lastQuality Quality
	hasQuality  bool
	// valueHook, when set, observes every successfully computed value —
	// the subscription plane's feed, so a single evaluation (whoever
	// triggered it) reaches every subscriber.
	valueHook func(probe.Reading)
}

type childBinding struct {
	varName  string
	accessor DataAccessor
}

// ChildInfo reports one composed service ("Contained Services" panel of
// Fig. 2).
type ChildInfo struct {
	Var  string
	Name string
}

// CSPOption configures a CSP.
type CSPOption func(*CSP)

// WithReadTimeout bounds composite reads (default 5s).
func WithReadTimeout(d time.Duration) CSPOption {
	return func(c *CSP) { c.timeout = d }
}

// WithSequentialReads disables parallel child evaluation.
func WithSequentialReads() CSPOption {
	return func(c *CSP) { c.sequential = true }
}

// WithCSPClock injects a clock.
func WithCSPClock(clock clockwork.Clock) CSPOption {
	return func(c *CSP) { c.clock = clock }
}

// WithCacheTTL serves repeated reads from the last computed value while it
// is younger than ttl — trading freshness for fan-out cost when many
// requestors share one composite.
func WithCacheTTL(ttl time.Duration) CSPOption {
	return func(c *CSP) { c.cacheTTL = ttl }
}

// WithQuorum lets composite reads survive component faults: failed or
// timed-out components are dropped and the value is computed over the
// surviving ones, provided at least min responded. Expressions referring
// to a missing component's variable fall back to the average of the
// survivors. Each degraded read is qualified via ReadQuality and, when
// served through an exertion, annotated at PathQuality.
func WithQuorum(min int) CSPOption {
	return func(c *CSP) {
		if min > 0 {
			c.quorum = min
		}
	}
}

// NewCSP creates an empty composite sensor provider.
func NewCSP(name string, opts ...CSPOption) *CSP {
	c := &CSP{
		id:      ids.NewServiceID(),
		name:    name,
		clock:   clockwork.Real(),
		store:   NewRingStore(64),
		timeout: 5 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ID returns the service identity.
func (c *CSP) ID() ids.ServiceID { return c.id }

// SensorName implements DataAccessor.
func (c *CSP) SensorName() string { return c.name }

// varName yields the i-th runtime variable name: a..z, then v26, v27...
func varName(i int) string {
	if i < 26 {
		return string(rune('a' + i))
	}
	return "v" + strconv.Itoa(i)
}

// AddChild composes another sensor service, returning the variable name
// bound to it.
func (c *CSP) AddChild(acc DataAccessor) (string, error) {
	if acc == nil {
		return "", errors.New("sensor: nil component service")
	}
	if acc == DataAccessor(c) {
		return "", errors.New("sensor: composite cannot contain itself")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ch := range c.children {
		if ch.accessor.SensorName() == acc.SensorName() {
			return "", fmt.Errorf("sensor: %q already composed in %q", acc.SensorName(), c.name)
		}
	}
	v := varName(len(c.children))
	c.children = append(c.children, childBinding{varName: v, accessor: acc})
	c.rebindLocked()
	return v, nil
}

// RemoveChild removes a composed service by sensor name. Remaining
// children are re-bound to a, b, c... in their surviving order.
func (c *CSP) RemoveChild(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, ch := range c.children {
		if ch.accessor.SensorName() == name {
			c.children = append(c.children[:i], c.children[i+1:]...)
			for j := range c.children {
				c.children[j].varName = varName(j)
			}
			c.rebindLocked()
			return nil
		}
	}
	return fmt.Errorf("sensor: %q not composed in %q", name, c.name)
}

// Children lists the composed services in variable order.
func (c *CSP) Children() []ChildInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ChildInfo, len(c.children))
	for i, ch := range c.children {
		out[i] = ChildInfo{Var: ch.varName, Name: ch.accessor.SensorName()}
	}
	return out
}

// SetExpression compiles and installs the compute-expression. An empty
// source restores the default (average of all components).
func (c *CSP) SetExpression(source string) error {
	if source == "" {
		c.mu.Lock()
		c.program = nil
		c.progVars = nil
		c.histWanted = nil
		c.rebindLocked()
		c.mu.Unlock()
		return nil
	}
	p, err := expr.Compile(source)
	if err != nil {
		return fmt.Errorf("sensor: expression for %q: %w", c.name, err)
	}
	// Which history variables ("a_hist") does the expression use? Hoisted
	// here so every read doesn't rediscover it; only children named in it
	// pay the history-binding cost.
	vars := p.Vars()
	hist := make(map[string]bool)
	for _, v := range vars {
		if strings.HasSuffix(v, "_hist") {
			hist[strings.TrimSuffix(v, "_hist")] = true
		}
	}
	c.mu.Lock()
	c.program = p
	c.progVars = vars
	c.histWanted = hist
	c.rebindLocked()
	c.mu.Unlock()
	return nil
}

// rebindLocked recomputes the slot binding after any change to the child
// set or the expression. Binding happens here — not on the read path — so
// GetValue evaluates against integer slots with no name resolution. A
// failed Bind (expression references a variable no child provides yet,
// or uses constructs beyond the numeric fast path) simply leaves bound
// nil; reads then take the Env path, whose semantics are the reference
// (including the eval-time "unbound variable" error).
func (c *CSP) rebindLocked() {
	c.bound = nil
	c.histChild = nil
	c.varRefs = nil
	if c.program == nil {
		return
	}
	names := make([]string, len(c.children))
	for i := range c.children {
		names[i] = c.children[i].varName
	}
	if bp, err := c.program.Bind(names); err == nil {
		c.bound = bp
	}
	c.histChild = make([]bool, len(names))
	for i, n := range names {
		c.histChild[i] = c.histWanted[n]
	}
	c.varRefs = make([]int, 0, len(c.progVars))
	for _, v := range c.progVars {
		base := strings.TrimSuffix(v, "_hist")
		if base == "values" {
			c.varRefs = append(c.varRefs, -2)
			continue
		}
		ref := -1
		for i, n := range names {
			if n == base {
				ref = i
				break
			}
		}
		c.varRefs = append(c.varRefs, ref)
	}
}

// Expression returns the current expression source ("" = default average).
func (c *CSP) Expression() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.program == nil {
		return ""
	}
	return c.program.Source()
}

// childValue is one component read result.
type childValue struct {
	idx     int
	reading probe.Reading
	err     error
}

// readScratch holds the per-read working buffers, pooled so steady-state
// composite reads allocate nothing beyond the inherent per-read fan-out
// (goroutines + result channel on the parallel path).
type readScratch struct {
	children []childBinding
	results  []childValue
	arrived  []bool
	slots    []float64
	hist     [][]float64
	histBuf  [][]float64
}

var readScratchPool = sync.Pool{New: func() any { return new(readScratch) }}

// put clears references (accessors, readings) so pooled scratch does not
// retain child services, then recycles the buffers.
func (sc *readScratch) put() {
	for i := range sc.children {
		sc.children[i] = childBinding{}
	}
	sc.children = sc.children[:0]
	for i := range sc.results {
		sc.results[i] = childValue{}
	}
	sc.results = sc.results[:0]
	readScratchPool.Put(sc)
}

// GetValue implements DataAccessor: read every component (in parallel
// unless configured otherwise), bind variables, evaluate the expression.
//
// Three paths, cheapest first: no expression → running-sum average with
// no expression machinery at all; slot-bound expression on a full read →
// BoundProgram.EvalFloats over pooled float64 slots (allocation-free);
// otherwise (degraded read, or an expression beyond the fast path) → the
// generic Env evaluator, which is the semantic reference.
func (c *CSP) GetValue() (probe.Reading, error) {
	if c.cacheTTL > 0 {
		if cached, ok := c.store.Latest(); ok && c.clock.Now().Sub(cached.Timestamp) < c.cacheTTL {
			return cached, nil
		}
	}
	sc := readScratchPool.Get().(*readScratch)
	c.mu.Lock()
	sc.children = append(sc.children[:0], c.children...)
	program := c.program
	progVars := c.progVars
	histWanted := c.histWanted
	bound := c.bound
	histChild := c.histChild
	varRefs := c.varRefs
	c.mu.Unlock()
	children := sc.children
	if len(children) == 0 {
		sc.put()
		return probe.Reading{}, fmt.Errorf("%w: %q", ErrNoChildren, c.name)
	}

	if cap(sc.results) < len(children) {
		sc.results = make([]childValue, len(children))
	}
	sc.results = sc.results[:len(children)]
	results := sc.results
	if c.sequential {
		for i, ch := range children {
			r, err := ch.accessor.GetValue()
			results[i] = childValue{idx: i, reading: r, err: err}
		}
	} else {
		// The result channel is per-read: a straggler outliving the
		// timeout writes into an abandoned buffer, never a pooled one.
		resCh := make(chan childValue, len(children))
		for i, ch := range children {
			go func(i int, acc DataAccessor) {
				r, err := acc.GetValue()
				resCh <- childValue{idx: i, reading: r, err: err}
			}(i, ch.accessor)
		}
		timer := c.clock.NewTimer(c.timeout)
		defer timer.Stop()
		if cap(sc.arrived) < len(children) {
			sc.arrived = make([]bool, len(children))
		}
		sc.arrived = sc.arrived[:len(children)]
		arrived := sc.arrived
		for i := range arrived {
			arrived[i] = false
		}
	collect:
		for received := 0; received < len(children); received++ {
			select {
			case cv := <-resCh:
				results[cv.idx] = cv
				arrived[cv.idx] = true
			case <-timer.C():
				if c.quorum <= 0 {
					sc.put()
					return probe.Reading{}, fmt.Errorf("%w after %v in %q", ErrChildTimeout, c.timeout, c.name)
				}
				// Degradable composite: the stragglers are treated as
				// failed components and the survivors carry the read.
				for i := range results {
					if !arrived[i] {
						results[i] = childValue{idx: i, err: ErrChildTimeout}
					}
				}
				break collect
			}
		}
	}

	// First pass: survivor count and running sum, unit uniformity, and
	// failed-component names (allocated only when something failed).
	responded, sum := 0, 0.0
	var missing []string
	unit, uniformUnit, first := "", true, true
	for i := range children {
		if results[i].err != nil {
			if c.quorum <= 0 {
				err := fmt.Errorf("sensor: component %q (%s) of %q: %w",
					children[i].accessor.SensorName(), children[i].varName, c.name, results[i].err)
				sc.put()
				return probe.Reading{}, err
			}
			missing = append(missing, children[i].accessor.SensorName())
			continue
		}
		responded++
		sum += results[i].reading.Value
		if first {
			unit, first = results[i].reading.Unit, false
		} else if unit != results[i].reading.Unit {
			uniformUnit = false
		}
	}
	if len(missing) > 0 && responded < c.quorum {
		err := fmt.Errorf("%w: %d of %d components of %q responded, quorum %d (missing: %s)",
			ErrQuorum, responded, len(children), c.name, c.quorum, strings.Join(missing, ", "))
		sc.put()
		return probe.Reading{}, err
	}

	var value float64
	switch {
	case program == nil:
		// Expressionless default: the running sum already is the answer.
		value = sum / float64(responded)
	case bound != nil && len(missing) == 0:
		v, err := c.evalBound(sc, bound, histChild)
		if err != nil {
			sc.put()
			return probe.Reading{}, fmt.Errorf("sensor: evaluating %q for %q: %w", program.Source(), c.name, err)
		}
		value = v
	default:
		v, err := c.evalEnv(sc, program, progVars, histWanted, varRefs, missing, responded, sum)
		if err != nil {
			sc.put()
			return probe.Reading{}, err
		}
		value = v
	}
	if !uniformUnit {
		unit = ""
	}
	r := probe.Reading{
		Sensor:    c.name,
		Kind:      "composite",
		Unit:      unit,
		Value:     value,
		Timestamp: c.clock.Now(),
	}
	c.mu.Lock()
	c.lastQuality = Quality{
		Responded: responded,
		Composed:  len(children),
		Degraded:  len(missing) > 0,
		Missing:   missing,
	}
	hook := c.valueHook
	c.hasQuality = true
	c.mu.Unlock()
	c.store.Add(r)
	sc.put()
	// The hook runs outside c.mu: it may fan the value out to
	// subscribers, which must never hold up or deadlock the composite.
	if hook != nil {
		hook(r)
	}
	return r, nil
}

// SetValueHook installs fn to observe every successfully computed
// composite value (nil removes it). The hook runs on the reading
// goroutine after the value is stored; it must not block.
func (c *CSP) SetValueHook(fn func(probe.Reading)) {
	c.mu.Lock()
	c.valueHook = fn
	c.mu.Unlock()
}

// evalBound is the full-read fast path: child values into pooled float64
// slots, history windows into pooled buffers, one EvalFloats call.
//
//lint:noalloc
func (c *CSP) evalBound(sc *readScratch, bound *expr.BoundProgram, histChild []bool) (float64, error) {
	slots := sc.slots[:0]
	for i := range sc.results {
		//lint:allocok amortized: the scratch slot slice is pooled and reaches a steady-state capacity after the first reads
		slots = append(slots, sc.results[i].reading.Value)
	}
	sc.slots = slots
	hist := sc.hist[:0]
	needHist := false
	for i := range sc.children {
		if i < len(histChild) && histChild[i] {
			needHist = true
			break
		}
	}
	if needHist {
		if cap(sc.histBuf) < len(sc.children) {
			//lint:allocok amortized: the pooled history buffer grows once to the composite's child count and is reused thereafter
			grown := make([][]float64, len(sc.children))
			copy(grown, sc.histBuf)
			sc.histBuf = grown
		}
		sc.histBuf = sc.histBuf[:len(sc.children)]
		for i := range sc.children {
			if !histChild[i] {
				//lint:allocok amortized: the scratch hist slice is pooled and reaches a steady-state capacity after the first reads
				hist = append(hist, nil)
				continue
			}
			// Oldest first, including the value just read — enabling
			// trend and smoothing expressions like "a - avg(a_hist)".
			buf := sc.histBuf[i][:0]
			if vh, ok := sc.children[i].accessor.(ValueHistory); ok {
				//lint:allocok amortized: AppendValues fills the pooled per-child buffer, which reaches window capacity after the first reads
				buf = vh.AppendValues(buf, HistoryWindow)
			} else {
				//lint:allocok cold fallback for accessors without ValueHistory; the in-process stores on the hot path all implement it
				for _, r := range sc.children[i].accessor.GetReadings(HistoryWindow) {
					//lint:allocok cold fallback for accessors without ValueHistory (see GetReadings above)
					buf = append(buf, r.Value)
				}
			}
			sc.histBuf[i] = buf
			//lint:allocok amortized: the scratch hist slice is pooled and reaches a steady-state capacity after the first reads
			hist = append(hist, buf)
		}
	}
	sc.hist = hist
	return bound.EvalFloats(slots, hist)
}

// evalEnv is the generic path: degraded reads and expressions the fast
// path cannot express. It preserves the historical Env semantics exactly,
// including the survivors'-average fallback when a degraded read lost a
// variable the expression references.
func (c *CSP) evalEnv(sc *readScratch, program *expr.Program, progVars []string,
	histWanted map[string]bool, varRefs []int, missing []string, responded int, sum float64) (float64, error) {
	// A degraded read may have lost variables the expression refers to;
	// evaluating would fail on the unbound name, so fall back to the
	// survivors' average — the same default an expressionless composite
	// uses. varRefs was resolved at bind time, so this check reads the
	// result table instead of building an Env first.
	useProgram := program
	if len(missing) > 0 {
		for _, ref := range varRefs {
			if ref == -2 {
				continue
			}
			if ref < 0 || sc.results[ref].err != nil {
				useProgram = nil
				break
			}
		}
	}
	if useProgram == nil {
		return sum / float64(responded), nil
	}

	env := expr.Env{}
	values := make([]float64, 0, responded)
	for i := range sc.children {
		if sc.results[i].err != nil {
			continue
		}
		v := sc.results[i].reading.Value
		env[sc.children[i].varName] = v
		values = append(values, v)
		if histWanted[sc.children[i].varName] {
			recent := sc.children[i].accessor.GetReadings(HistoryWindow)
			hist := make([]float64, len(recent))
			for j, r := range recent {
				hist[j] = r.Value
			}
			env[sc.children[i].varName+"_hist"] = hist
		}
	}
	env["values"] = values
	v, err := useProgram.EvalNumber(env)
	if err != nil {
		return 0, fmt.Errorf("sensor: evaluating %q for %q: %w", useProgram.Source(), c.name, err)
	}
	return v, nil
}

// ReadQuality implements QualityReporter: it qualifies the most recent
// successful evaluation (false before the first one).
func (c *CSP) ReadQuality() (Quality, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastQuality, c.hasQuality
}

// GetReadings implements DataAccessor, returning previously computed
// composite values.
func (c *CSP) GetReadings(n int) []probe.Reading {
	return c.store.LastN(n)
}

// AppendValues implements ValueHistory over the composite's own store, so
// a parent CSP's fast path can bind this composite's history window
// without materializing Readings.
func (c *CSP) AppendValues(dst []float64, n int) []float64 {
	return c.store.AppendValues(dst, n)
}

// Describe implements DataAccessor.
func (c *CSP) Describe() probe.Info {
	return probe.Info{Name: c.name, Technology: "composite", Kind: "composite", Unit: ""}
}

// Service implements sorcer.Servicer with the standard sensor selectors.
func (c *CSP) Service(ex sorcer.Exertion, tx *txn.Transaction) (sorcer.Exertion, error) {
	return serveAccessor(c, ex, tx)
}

// Publish joins the CSP to every discovered lookup service with composite
// attributes, including the expression and composed-service list shown in
// the paper's browser panel.
func (c *CSP) Publish(clock clockwork.Clock, mgr *discovery.Manager, extra ...attr.Entry) *discovery.Join {
	attrs := attr.Set{
		attr.Name(c.name),
		attr.ServiceType(CategoryComposite),
		attr.ServiceInfo("SenSORCER", "CSP", "1.0"),
	}
	attrs = append(attrs, extra...)
	return sorcer.PublishServicer(clock, mgr, c, c.id, c.name, []string{AccessorType}, attrs)
}

var (
	_ DataAccessor    = (*CSP)(nil)
	_ ValueHistory    = (*CSP)(nil)
	_ sorcer.Servicer = (*CSP)(nil)
)
