package sensor

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/expr"
	"sensorcer/internal/ids"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/txn"
)

// ErrNoChildren is returned when reading an empty composite.
var ErrNoChildren = errors.New("sensor: composite has no component services")

// HistoryWindow is how many recent readings a "<var>_hist" expression
// variable carries.
const HistoryWindow = 16

// ErrChildTimeout is returned when a component read exceeds the deadline.
var ErrChildTimeout = errors.New("sensor: component read timed out")

// ErrQuorum is returned when fewer components than the configured quorum
// produced a value.
var ErrQuorum = errors.New("sensor: quorum not met")

// Quality describes how complete the last composite evaluation was — the
// data-quality annotation degraded reads stamp into task contexts.
type Quality struct {
	// Responded is how many components produced a value.
	Responded int
	// Composed is how many components the CSP holds.
	Composed int
	// Degraded reports that at least one component was missing.
	Degraded bool
	// Missing lists the sensor names of the failed components.
	Missing []string
}

// String renders the annotation, e.g. "full 4/4" or
// "degraded 3/4 (missing: rtd-1)".
func (q Quality) String() string {
	if !q.Degraded {
		return fmt.Sprintf("full %d/%d", q.Responded, q.Composed)
	}
	return fmt.Sprintf("degraded %d/%d (missing: %s)",
		q.Responded, q.Composed, strings.Join(q.Missing, ", "))
}

// QualityReporter is implemented by accessors that can qualify their last
// value; serveAccessor stamps the annotation into the task context.
type QualityReporter interface {
	ReadQuality() (Quality, bool)
}

// CSP is the Composite Sensor Provider (§V-B): it composes ESPs and other
// CSPs, collects their values, binds them to runtime variables (a, b, c,
// ... in composition order — §VI: "the variables that are used in the
// expression are created dynamically, as the services are added"), and
// evaluates its compute-expression over them. Because a CSP is itself a
// DataAccessor, composites nest: "CSP's ability to contain other CSPs
// makes logical sensor networking possible", which is exactly Fig. 3's
// two-level network.
type CSP struct {
	id    ids.ServiceID
	name  string
	clock clockwork.Clock
	store *RingStore

	// timeout bounds each composite read (all children in parallel).
	timeout time.Duration
	// sequential forces one-at-a-time child reads (ablation benchmark).
	sequential bool
	// cacheTTL serves repeated reads from the last computed value while
	// it is younger than the TTL (0 = recompute every read).
	cacheTTL time.Duration
	// quorum, when positive, lets reads degrade gracefully: components
	// that error or time out are dropped and the expression evaluates
	// over the survivors, as long as at least quorum of them responded.
	// Zero keeps the strict historical behavior (any failure fails the
	// read).
	quorum int

	mu       sync.Mutex
	children []childBinding
	program  *expr.Program
	// progVars and histWanted are hoisted from the program at SetExpression
	// time — the read path consults them on every evaluation, and a
	// compiled program's variable set never changes.
	progVars   []string
	histWanted map[string]bool
	// lastQuality qualifies the most recent successful evaluation.
	lastQuality Quality
	hasQuality  bool
}

type childBinding struct {
	varName  string
	accessor DataAccessor
}

// ChildInfo reports one composed service ("Contained Services" panel of
// Fig. 2).
type ChildInfo struct {
	Var  string
	Name string
}

// CSPOption configures a CSP.
type CSPOption func(*CSP)

// WithReadTimeout bounds composite reads (default 5s).
func WithReadTimeout(d time.Duration) CSPOption {
	return func(c *CSP) { c.timeout = d }
}

// WithSequentialReads disables parallel child evaluation.
func WithSequentialReads() CSPOption {
	return func(c *CSP) { c.sequential = true }
}

// WithCSPClock injects a clock.
func WithCSPClock(clock clockwork.Clock) CSPOption {
	return func(c *CSP) { c.clock = clock }
}

// WithCacheTTL serves repeated reads from the last computed value while it
// is younger than ttl — trading freshness for fan-out cost when many
// requestors share one composite.
func WithCacheTTL(ttl time.Duration) CSPOption {
	return func(c *CSP) { c.cacheTTL = ttl }
}

// WithQuorum lets composite reads survive component faults: failed or
// timed-out components are dropped and the value is computed over the
// surviving ones, provided at least min responded. Expressions referring
// to a missing component's variable fall back to the average of the
// survivors. Each degraded read is qualified via ReadQuality and, when
// served through an exertion, annotated at PathQuality.
func WithQuorum(min int) CSPOption {
	return func(c *CSP) {
		if min > 0 {
			c.quorum = min
		}
	}
}

// NewCSP creates an empty composite sensor provider.
func NewCSP(name string, opts ...CSPOption) *CSP {
	c := &CSP{
		id:      ids.NewServiceID(),
		name:    name,
		clock:   clockwork.Real(),
		store:   NewRingStore(64),
		timeout: 5 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ID returns the service identity.
func (c *CSP) ID() ids.ServiceID { return c.id }

// SensorName implements DataAccessor.
func (c *CSP) SensorName() string { return c.name }

// varName yields the i-th runtime variable name: a..z, then v26, v27...
func varName(i int) string {
	if i < 26 {
		return string(rune('a' + i))
	}
	return "v" + strconv.Itoa(i)
}

// AddChild composes another sensor service, returning the variable name
// bound to it.
func (c *CSP) AddChild(acc DataAccessor) (string, error) {
	if acc == nil {
		return "", errors.New("sensor: nil component service")
	}
	if acc == DataAccessor(c) {
		return "", errors.New("sensor: composite cannot contain itself")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ch := range c.children {
		if ch.accessor.SensorName() == acc.SensorName() {
			return "", fmt.Errorf("sensor: %q already composed in %q", acc.SensorName(), c.name)
		}
	}
	v := varName(len(c.children))
	c.children = append(c.children, childBinding{varName: v, accessor: acc})
	return v, nil
}

// RemoveChild removes a composed service by sensor name. Remaining
// children are re-bound to a, b, c... in their surviving order.
func (c *CSP) RemoveChild(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, ch := range c.children {
		if ch.accessor.SensorName() == name {
			c.children = append(c.children[:i], c.children[i+1:]...)
			for j := range c.children {
				c.children[j].varName = varName(j)
			}
			return nil
		}
	}
	return fmt.Errorf("sensor: %q not composed in %q", name, c.name)
}

// Children lists the composed services in variable order.
func (c *CSP) Children() []ChildInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ChildInfo, len(c.children))
	for i, ch := range c.children {
		out[i] = ChildInfo{Var: ch.varName, Name: ch.accessor.SensorName()}
	}
	return out
}

// SetExpression compiles and installs the compute-expression. An empty
// source restores the default (average of all components).
func (c *CSP) SetExpression(source string) error {
	if source == "" {
		c.mu.Lock()
		c.program = nil
		c.progVars = nil
		c.histWanted = nil
		c.mu.Unlock()
		return nil
	}
	p, err := expr.Compile(source)
	if err != nil {
		return fmt.Errorf("sensor: expression for %q: %w", c.name, err)
	}
	// Which history variables ("a_hist") does the expression use? Hoisted
	// here so every read doesn't rediscover it; only children named in it
	// pay the GetReadings call.
	vars := p.Vars()
	hist := make(map[string]bool)
	for _, v := range vars {
		if strings.HasSuffix(v, "_hist") {
			hist[strings.TrimSuffix(v, "_hist")] = true
		}
	}
	c.mu.Lock()
	c.program = p
	c.progVars = vars
	c.histWanted = hist
	c.mu.Unlock()
	return nil
}

// Expression returns the current expression source ("" = default average).
func (c *CSP) Expression() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.program == nil {
		return ""
	}
	return c.program.Source()
}

// childValue is one component read result.
type childValue struct {
	idx     int
	reading probe.Reading
	err     error
}

// GetValue implements DataAccessor: read every component (in parallel
// unless configured otherwise), bind variables, evaluate the expression.
func (c *CSP) GetValue() (probe.Reading, error) {
	if c.cacheTTL > 0 {
		if cached, ok := c.store.Latest(); ok && c.clock.Now().Sub(cached.Timestamp) < c.cacheTTL {
			return cached, nil
		}
	}
	c.mu.Lock()
	children := append([]childBinding{}, c.children...)
	program := c.program
	progVars := c.progVars
	histWanted := c.histWanted
	c.mu.Unlock()
	if len(children) == 0 {
		return probe.Reading{}, fmt.Errorf("%w: %q", ErrNoChildren, c.name)
	}

	results := make([]childValue, len(children))
	if c.sequential {
		for i, ch := range children {
			r, err := ch.accessor.GetValue()
			results[i] = childValue{idx: i, reading: r, err: err}
		}
	} else {
		resCh := make(chan childValue, len(children))
		for i, ch := range children {
			go func(i int, acc DataAccessor) {
				r, err := acc.GetValue()
				resCh <- childValue{idx: i, reading: r, err: err}
			}(i, ch.accessor)
		}
		timer := c.clock.NewTimer(c.timeout)
		defer timer.Stop()
		arrived := make([]bool, len(children))
	collect:
		for received := 0; received < len(children); received++ {
			select {
			case cv := <-resCh:
				results[cv.idx] = cv
				arrived[cv.idx] = true
			case <-timer.C():
				if c.quorum <= 0 {
					return probe.Reading{}, fmt.Errorf("%w after %v in %q", ErrChildTimeout, c.timeout, c.name)
				}
				// Degradable composite: the stragglers are treated as
				// failed components and the survivors carry the read.
				for i := range results {
					if !arrived[i] {
						results[i] = childValue{idx: i, err: ErrChildTimeout}
					}
				}
				break collect
			}
		}
	}

	env := expr.Env{}
	values := make([]float64, 0, len(children))
	var missing []string
	unit, uniformUnit, first := "", true, true
	for i, ch := range children {
		if results[i].err != nil {
			if c.quorum <= 0 {
				return probe.Reading{}, fmt.Errorf("sensor: component %q (%s) of %q: %w",
					ch.accessor.SensorName(), ch.varName, c.name, results[i].err)
			}
			missing = append(missing, ch.accessor.SensorName())
			continue
		}
		env[ch.varName] = results[i].reading.Value
		values = append(values, results[i].reading.Value)
		if histWanted[ch.varName] {
			// Bind the child's recent history (oldest first, including
			// the value just read) as "<var>_hist" — enabling trend and
			// smoothing expressions like "a - avg(a_hist)".
			recent := ch.accessor.GetReadings(HistoryWindow)
			hist := make([]float64, len(recent))
			for j, r := range recent {
				hist[j] = r.Value
			}
			env[ch.varName+"_hist"] = hist
		}
		if first {
			unit, first = results[i].reading.Unit, false
		} else if unit != results[i].reading.Unit {
			uniformUnit = false
		}
	}
	if len(missing) > 0 && len(values) < c.quorum {
		return probe.Reading{}, fmt.Errorf("%w: %d of %d components of %q responded, quorum %d (missing: %s)",
			ErrQuorum, len(values), len(children), c.name, c.quorum, strings.Join(missing, ", "))
	}
	env["values"] = values

	// A degraded read may have lost variables the expression refers to;
	// evaluating would fail on the unbound name, so fall back to the
	// survivors' average — the same default an expressionless composite
	// uses.
	useProgram := program
	if useProgram != nil && len(missing) > 0 {
		for _, v := range progVars {
			base := strings.TrimSuffix(v, "_hist")
			if base == "values" {
				continue
			}
			if _, bound := env[base]; !bound {
				useProgram = nil
				break
			}
		}
	}

	var value float64
	if useProgram == nil {
		sum := 0.0
		for _, v := range values {
			sum += v
		}
		value = sum / float64(len(values))
	} else {
		v, err := useProgram.EvalNumber(env)
		if err != nil {
			return probe.Reading{}, fmt.Errorf("sensor: evaluating %q for %q: %w", useProgram.Source(), c.name, err)
		}
		value = v
	}
	if !uniformUnit {
		unit = ""
	}
	r := probe.Reading{
		Sensor:    c.name,
		Kind:      "composite",
		Unit:      unit,
		Value:     value,
		Timestamp: c.clock.Now(),
	}
	c.mu.Lock()
	c.lastQuality = Quality{
		Responded: len(values),
		Composed:  len(children),
		Degraded:  len(missing) > 0,
		Missing:   missing,
	}
	c.hasQuality = true
	c.mu.Unlock()
	c.store.Add(r)
	return r, nil
}

// ReadQuality implements QualityReporter: it qualifies the most recent
// successful evaluation (false before the first one).
func (c *CSP) ReadQuality() (Quality, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastQuality, c.hasQuality
}

// GetReadings implements DataAccessor, returning previously computed
// composite values.
func (c *CSP) GetReadings(n int) []probe.Reading {
	return c.store.LastN(n)
}

// Describe implements DataAccessor.
func (c *CSP) Describe() probe.Info {
	return probe.Info{Name: c.name, Technology: "composite", Kind: "composite", Unit: ""}
}

// Service implements sorcer.Servicer with the standard sensor selectors.
func (c *CSP) Service(ex sorcer.Exertion, tx *txn.Transaction) (sorcer.Exertion, error) {
	return serveAccessor(c, ex, tx)
}

// Publish joins the CSP to every discovered lookup service with composite
// attributes, including the expression and composed-service list shown in
// the paper's browser panel.
func (c *CSP) Publish(clock clockwork.Clock, mgr *discovery.Manager, extra ...attr.Entry) *discovery.Join {
	attrs := attr.Set{
		attr.Name(c.name),
		attr.ServiceType(CategoryComposite),
		attr.ServiceInfo("SenSORCER", "CSP", "1.0"),
	}
	attrs = append(attrs, extra...)
	return sorcer.PublishServicer(clock, mgr, c, c.id, c.name, []string{AccessorType}, attrs)
}

var (
	_ DataAccessor    = (*CSP)(nil)
	_ sorcer.Servicer = (*CSP)(nil)
)
