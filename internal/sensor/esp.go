package sensor

import (
	"fmt"
	"sync"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/event"
	"sensorcer/internal/ids"
	"sensorcer/internal/lease"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/txn"
)

// EventReadingUpdate is fired by an ESP on every background sample.
const EventReadingUpdate uint64 = 1

// ESP is the Elementary Sensor Provider, "the basic building block of this
// framework" (§V-B): it employs a probe to connect one sensor, keeps
// recent readings in a local store, and exposes them through the common
// SensorDataAccessor interface and the SORCER Servicer interface. In
// sensor-network semantics the ESP plays the role of a node.
type ESP struct {
	id    ids.ServiceID
	name  string
	probe probe.Probe
	clock clockwork.Clock
	store *RingStore

	// interval > 0 runs a background sampling loop; 0 samples on demand.
	interval time.Duration
	events   *event.Generator

	mu      sync.Mutex
	lastErr error
	running bool
	stop    chan struct{}
	done    chan struct{}
}

// ESPOption configures an ESP.
type ESPOption func(*ESP)

// WithSampleInterval enables background sampling at the given period.
func WithSampleInterval(d time.Duration) ESPOption {
	return func(e *ESP) { e.interval = d }
}

// WithStoreCapacity sizes the local reading store (default 64).
func WithStoreCapacity(n int) ESPOption {
	return func(e *ESP) { e.store = NewRingStore(n) }
}

// WithClock injects a clock (tests).
func WithClock(c clockwork.Clock) ESPOption {
	return func(e *ESP) { e.clock = c }
}

// NewESP creates an elementary sensor provider over the probe.
func NewESP(name string, p probe.Probe, opts ...ESPOption) *ESP {
	e := &ESP{
		id:    ids.NewServiceID(),
		name:  name,
		probe: p,
		clock: clockwork.Real(),
		store: NewRingStore(64),
	}
	for _, o := range opts {
		o(e)
	}
	e.events = event.NewGenerator(e.id, e.clock, lease.Policy{Max: lease.DefaultMax})
	return e
}

// ID returns the service identity.
func (e *ESP) ID() ids.ServiceID { return e.id }

// SensorName implements DataAccessor.
func (e *ESP) SensorName() string { return e.name }

// Describe implements DataAccessor.
func (e *ESP) Describe() probe.Info {
	info := e.probe.Info()
	info.Name = e.name
	return info
}

// Health reports the underlying device condition when the probe supports
// it (battery level for SPOT probes).
func (e *ESP) Health() (float64, bool) {
	if hr, ok := e.probe.(probe.HealthReporter); ok {
		return hr.Health()
	}
	return 0, false
}

// Events exposes the reading-update event generator.
func (e *ESP) Events() *event.Generator { return e.events }

// Store exposes the local reading store (monitoring, tests).
func (e *ESP) Store() *RingStore { return e.store }

// Start launches the background sampling loop (no-op when the ESP is
// on-demand or already running).
func (e *ESP) Start() {
	if e.interval <= 0 {
		return
	}
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		return
	}
	e.running = true
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	stop, done := e.stop, e.done
	e.mu.Unlock()
	go e.loop(stop, done)
}

func (e *ESP) loop(stop, done chan struct{}) {
	defer close(done)
	for {
		e.sampleOnce()
		timer := e.clock.NewTimer(e.interval)
		select {
		case <-timer.C():
		case <-stop:
			timer.Stop()
			return
		}
	}
}

func (e *ESP) sampleOnce() {
	r, err := e.probe.Read()
	e.mu.Lock()
	e.lastErr = err
	e.mu.Unlock()
	if err != nil {
		return
	}
	r.Sensor = e.name
	e.store.Add(r)
	e.events.Fire(EventReadingUpdate, r)
}

// Stop halts background sampling. The ESP can be restarted.
func (e *ESP) Stop() {
	e.mu.Lock()
	if !e.running {
		e.mu.Unlock()
		return
	}
	e.running = false
	stop, done := e.stop, e.done
	e.mu.Unlock()
	close(stop)
	<-done
}

// Close stops sampling, closes the probe and the event generator.
func (e *ESP) Close() error {
	e.Stop()
	e.events.Close()
	return e.probe.Close()
}

// GetValue implements DataAccessor. On-demand ESPs read the probe; sampled
// ESPs return the latest stored reading (falling back to a direct read
// before the first sample lands).
func (e *ESP) GetValue() (probe.Reading, error) {
	if e.interval > 0 {
		if r, ok := e.store.Latest(); ok {
			return r, nil
		}
		e.mu.Lock()
		lastErr := e.lastErr
		e.mu.Unlock()
		if lastErr != nil {
			return probe.Reading{}, fmt.Errorf("sensor %q: %w", e.name, lastErr)
		}
	}
	r, err := e.probe.Read()
	if err != nil {
		return probe.Reading{}, fmt.Errorf("sensor %q: %w", e.name, err)
	}
	r.Sensor = e.name
	e.store.Add(r)
	return r, nil
}

// GetReadings implements DataAccessor.
func (e *ESP) GetReadings(n int) []probe.Reading {
	return e.store.LastN(n)
}

// AppendValues implements ValueHistory over the local store.
func (e *ESP) AppendValues(dst []float64, n int) []float64 {
	return e.store.AppendValues(dst, n)
}

// Service implements sorcer.Servicer, serving the getValue, getReadings
// and getInfo selectors on the AccessorType signature.
func (e *ESP) Service(ex sorcer.Exertion, tx *txn.Transaction) (sorcer.Exertion, error) {
	return serveAccessor(e, ex, tx)
}

// Publish joins the ESP to every discovered lookup service with the
// standard elementary-sensor attributes (plus extras such as Location).
func (e *ESP) Publish(clock clockwork.Clock, mgr *discovery.Manager, extra ...attr.Entry) *discovery.Join {
	info := e.Describe()
	attrs := attr.Set{
		attr.Name(e.name),
		attr.SensorType(info.Kind, info.Unit),
		attr.ServiceType(CategoryElementary),
		attr.ServiceInfo("SenSORCER", "ESP/"+info.Technology, "1.0"),
	}
	attrs = append(attrs, extra...)
	return sorcer.PublishServicer(clock, mgr, e, e.id, e.name, []string{AccessorType}, attrs)
}

// serveAccessor is the shared Servicer implementation for every sensor
// provider (ESP and CSP serve identical selectors).
func serveAccessor(acc DataAccessor, ex sorcer.Exertion, _ *txn.Transaction) (sorcer.Exertion, error) {
	task, ok := ex.(*sorcer.Task)
	if !ok {
		return ex, fmt.Errorf("%w: got %T", sorcer.ErrNotTask, ex)
	}
	sig := task.Signature()
	if sig.ServiceType != AccessorType {
		return task, fmt.Errorf("%w: %q", sorcer.ErrWrongType, sig.ServiceType)
	}
	ctx := task.Context()
	op := func() error {
		switch sig.Selector {
		case SelGetValue:
			r, err := acc.GetValue()
			if err != nil {
				return err
			}
			putReading(ctx, r)
			// Composites qualify their values: a read that survived
			// component faults carries its completeness alongside the
			// value, so requestors can judge the number they got.
			if qr, ok := acc.(QualityReporter); ok {
				if q, has := qr.ReadQuality(); has {
					ctx.Put(PathQuality, q.String())
				}
			}
			return nil
		case SelGetReadings:
			n := 0
			if f, err := ctx.Float(PathCount); err == nil {
				n = int(f)
			}
			readings := acc.GetReadings(n)
			values := make([]float64, len(readings))
			for i, r := range readings {
				values[i] = r.Value
			}
			ctx.Put(PathReadings, values)
			ctx.Put(PathName, acc.SensorName())
			return nil
		case SelGetInfo:
			info := acc.Describe()
			ctx.Put(PathName, info.Name)
			ctx.Put(PathKind, info.Kind)
			ctx.Put(PathUnit, info.Unit)
			ctx.Put("sensor/technology", info.Technology)
			if hr, ok := acc.(probe.HealthReporter); ok {
				if level, has := hr.Health(); has {
					ctx.Put(PathHealth, level)
				}
			}
			return nil
		default:
			return fmt.Errorf("%w: %q", sorcer.ErrUnknownSelector, sig.Selector)
		}
	}
	if err := op(); err != nil {
		markTask(task, ctx, err)
		return task, err
	}
	markTask(task, ctx, nil)
	return task, nil
}

func putReading(ctx *sorcer.Context, r probe.Reading) {
	ctx.Put(PathValue, r.Value)
	ctx.Put(PathUnit, r.Unit)
	ctx.Put(PathKind, r.Kind)
	ctx.Put(PathName, r.Sensor)
	ctx.Put(PathTimestamp, r.Timestamp)
}

// markTask transitions a task we executed ourselves (without going through
// sorcer.Provider) into its final state.
func markTask(task *sorcer.Task, ctx *sorcer.Context, err error) {
	// Task result plumbing lives in package sorcer; reuse a tiny
	// provider-less transition helper there.
	sorcer.FinishTask(task, ctx, err)
}

// ensure interface satisfaction.
var (
	_ DataAccessor    = (*ESP)(nil)
	_ sorcer.Servicer = (*ESP)(nil)
)
