//go:build chaos

package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/faults"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/resilience"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/space"
	"sensorcer/internal/txn"
	"sensorcer/internal/wal"
)

// The crash-recovery suite: model-based crash/replay iterations. Each
// iteration drives a durable space (or registry) through a seeded random
// op sequence, maintaining a model of exactly which effects were ACKED,
// then kills it — sometimes cleanly, sometimes mid-append with a torn
// partial frame at a seeded-random offset — recovers from the journal,
// and asserts the three replay invariants:
//
//  1. no acked write lost,
//  2. no entry taken twice (drains must yield no duplicates and no
//     durably-taken entry),
//  3. no aborted (or unresolved) transaction resurrected.
//
// The op in flight at the crash is indeterminate by definition (the
// caller never got an ack) and is excluded from the model.

const envelopeKind = "ExertionEnvelope"

// spaceModel tracks which entry uids must be present after recovery.
type spaceModel struct {
	present map[int64]bool
	nextUID int64
}

func (m *spaceModel) uid() int64 { m.nextUID++; return m.nextUID }

// expectPresent returns the sorted uid set the recovered space must hold.
func (m *spaceModel) expectPresent() map[int64]bool {
	out := make(map[int64]bool)
	for uid, p := range m.present {
		if p {
			out[uid] = true
		}
	}
	return out
}

func uidEntry(uid int64) space.Entry {
	// float64 uid: JSON-native, so template matching survives replay.
	return space.NewEntry(envelopeKind, "uid", float64(uid))
}

func openSpace(t *testing.T, dir string, fc clockwork.Clock) (*space.Space, *wal.Log) {
	t.Helper()
	l, err := wal.Open(dir, wal.WithSyncEveryAppend(false))
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	s, err := space.Recover(fc, lease.Policy{Max: 24 * time.Hour}, l)
	if err != nil {
		t.Fatalf("recover space: %v", err)
	}
	return s, l
}

// drainUIDs takes every visible entry out of the space and returns the
// uid multiset, failing on duplicates (an entry served twice).
func drainUIDs(t *testing.T, s *space.Space, iter int) map[int64]bool {
	t.Helper()
	got := make(map[int64]bool)
	for {
		e, err := s.Take(space.NewEntry(envelopeKind), nil, 0)
		if errors.Is(err, space.ErrTimeout) {
			return got
		}
		if err != nil {
			t.Fatalf("iter %d: draining recovered space: %v", iter, err)
		}
		uid := int64(e.Field("uid").(float64))
		if got[uid] {
			t.Fatalf("iter %d: entry uid=%d recovered twice", iter, uid)
		}
		got[uid] = true
	}
}

// crashSpaceIteration runs one seeded op sequence against a durable space,
// crashes it, recovers, and checks the model.
func crashSpaceIteration(t *testing.T, iter int, rng *rand.Rand) {
	dir := t.TempDir()
	fc := clockwork.NewFake(time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC))
	s, l := openSpace(t, dir, fc)
	tm := txn.NewManager(fc, lease.Policy{Max: 24 * time.Hour})
	m := &spaceModel{present: make(map[int64]bool)}
	// Entries held by an unresolved transaction stay invisible in the live
	// run (the txn's lease never expires on the frozen fake clock), so they
	// cannot be candidates for later takes — though replay's forced abort
	// will bounce them back, which is what the model's `present` asserts.
	locked := make(map[int64]bool)

	write := func(tx *txn.Transaction) int64 {
		uid := m.uid()
		_, err := s.Write(uidEntry(uid), tx, time.Hour)
		if err != nil {
			t.Fatalf("iter %d: write uid=%d: %v", iter, uid, err)
		}
		if tx == nil {
			m.present[uid] = true // acked, outside any txn
		}
		return uid
	}
	// takeRandom takes one currently-present entry (nil tx: the removal is
	// durable on ack).
	takeRandom := func(tx *txn.Transaction) (int64, bool) {
		var candidates []int64
		for uid, p := range m.present {
			if p && !locked[uid] {
				candidates = append(candidates, uid)
			}
		}
		if len(candidates) == 0 {
			return 0, false
		}
		uid := candidates[rng.Intn(len(candidates))]
		if _, err := s.Take(uidEntry(uid), tx, 0); err != nil {
			t.Fatalf("iter %d: take uid=%d: %v", iter, uid, err)
		}
		if tx == nil {
			delete(m.present, uid)
		} else {
			locked[uid] = true
		}
		return uid, true
	}

	nOps := 10 + rng.Intn(40)
	for op := 0; op < nOps; op++ {
		switch r := rng.Float64(); {
		case r < 0.50:
			write(nil)
		case r < 0.75:
			takeRandom(nil)
		case r < 0.90:
			// Transaction block: stage writes and takes, then resolve —
			// or don't, leaving it for replay to abort.
			tx, _ := tm.Create(time.Hour)
			var stagedWrites, stagedTakes []int64
			for i := 0; i < 1+rng.Intn(3); i++ {
				if rng.Float64() < 0.5 {
					stagedWrites = append(stagedWrites, write(tx))
				} else if uid, ok := takeRandom(tx); ok {
					stagedTakes = append(stagedTakes, uid)
				}
			}
			switch outcome := rng.Float64(); {
			case outcome < 0.40: // commit
				if err := tx.Commit(); err != nil {
					t.Fatalf("iter %d: commit: %v", iter, err)
				}
				for _, uid := range stagedWrites {
					m.present[uid] = true
				}
				for _, uid := range stagedTakes {
					delete(m.present, uid)
					delete(locked, uid)
				}
			case outcome < 0.75: // abort
				if err := tx.Abort(); err != nil {
					t.Fatalf("iter %d: abort: %v", iter, err)
				}
				// Staged writes were never acked durable; staged takes
				// bounce back. m.present already says exactly that.
				for _, uid := range stagedTakes {
					delete(locked, uid)
				}
			default:
				// Unresolved at crash: replay must abort it. Same model
				// state as an explicit abort.
			}
		default:
			if err := s.Checkpoint(); err != nil {
				t.Fatalf("iter %d: checkpoint: %v", iter, err)
			}
		}
	}

	// Crash. Half the time cleanly; half the time mid-append, leaving a
	// seeded-random torn partial frame on disk — the op that was in
	// flight fails (never acked) and is excluded from the model.
	if rng.Float64() < 0.5 {
		inj := faults.New(rng.Int63(), fc)
		inj.Set(wal.FaultSiteAppend, faults.Rule{ErrorRate: 1})
		l.SetFaultInjector(inj, "")
		l.ArmTornWrites(rng.Int63())
		uid := m.uid()
		if _, err := s.Write(uidEntry(uid), nil, time.Hour); err == nil {
			t.Fatalf("iter %d: in-flight crash write was acked", iter)
		}
	}
	s.Close()
	_ = l.Close()

	// Recover and check the three invariants against the model.
	re, rl := openSpace(t, dir, clockwork.NewFake(fc.Now().Add(time.Hour)))
	defer func() { re.Close(); _ = rl.Close() }()
	got := drainUIDs(t, re, iter)
	want := m.expectPresent()
	for uid := range want {
		if !got[uid] {
			t.Errorf("iter %d: acked write uid=%d lost in recovery", iter, uid)
		}
	}
	for uid := range got {
		if !want[uid] {
			t.Errorf("iter %d: uid=%d resurrected (taken entry back, or aborted/unresolved txn write)", iter, uid)
		}
	}
	if t.Failed() {
		t.Fatalf("iter %d: invariants violated (CHAOS_SEED=%d reproduces)", iter, seed(t))
	}
}

// TestSpaceCrashRecoveryInvariants is the headline suite: >= 200 seeded
// crash/recover iterations over the durable tuple space.
func TestSpaceCrashRecoveryInvariants(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 25
	}
	rng := rand.New(rand.NewSource(seed(t)))
	for i := 0; i < iters; i++ {
		crashSpaceIteration(t, i, rng)
	}
}

// crashRegistryIteration drives a durable registry through random
// register/deregister/attribute churn, crashes it, and checks the live
// set matches exactly what was acked.
func crashRegistryIteration(t *testing.T, iter int, rng *rand.Rand) {
	dir := t.TempDir()
	fc := clockwork.NewFake(time.Date(2009, 10, 6, 17, 26, 0, 0, time.UTC))
	open := func(fc clockwork.Clock) (*registry.LookupService, *wal.Log) {
		l, err := wal.Open(dir, wal.WithSyncEveryAppend(false))
		if err != nil {
			t.Fatalf("open wal: %v", err)
		}
		lus, err := registry.Recover("chaos-lus", fc, l,
			registry.WithLeasePolicy(lease.Policy{Max: 24 * time.Hour}))
		if err != nil {
			t.Fatalf("recover registry: %v", err)
		}
		return lus, l
	}
	lus, l := open(fc)

	live := make(map[string]registry.Registration) // name -> acked registration
	names := []string{"Neem", "Oak", "Pine", "Birch", "Maple", "Cedar"}
	nOps := 10 + rng.Intn(30)
	for op := 0; op < nOps; op++ {
		name := names[rng.Intn(len(names))]
		switch r := rng.Float64(); {
		case r < 0.55:
			item := registry.ServiceItem{
				Service:    name,
				Types:      []string{"SensorDataAccessor"},
				Attributes: attr.Set{attr.Name(name)},
			}
			if prev, ok := live[name]; ok {
				item.ID = prev.ServiceID // re-registration, Jini style
			}
			reg, err := lus.Register(item, time.Hour)
			if err != nil {
				t.Fatalf("iter %d: register %s: %v", iter, name, err)
			}
			live[name] = reg
		case r < 0.80:
			reg, ok := live[name]
			if !ok {
				continue
			}
			if err := lus.Deregister(reg.ServiceID); err != nil {
				t.Fatalf("iter %d: deregister %s: %v", iter, name, err)
			}
			delete(live, name)
		default:
			if err := lus.Checkpoint(); err != nil {
				t.Fatalf("iter %d: checkpoint: %v", iter, err)
			}
		}
	}

	// Crash, half the time mid-append with a torn frame.
	if rng.Float64() < 0.5 {
		inj := faults.New(rng.Int63(), fc)
		inj.Set(wal.FaultSiteAppend, faults.Rule{ErrorRate: 1})
		l.SetFaultInjector(inj, "")
		l.ArmTornWrites(rng.Int63())
		doomed := registry.ServiceItem{
			Service: "doomed", Types: []string{"SensorDataAccessor"},
			Attributes: attr.Set{attr.Name("doomed")},
		}
		if _, err := lus.Register(doomed, time.Hour); err == nil {
			t.Fatalf("iter %d: in-flight crash registration was acked", iter)
		}
	}
	lus.Close()
	_ = l.Close()

	re, rl := open(clockwork.NewFake(fc.Now().Add(time.Hour)))
	defer func() { re.Close(); _ = rl.Close() }()
	if got, want := re.Len(), len(live); got != want {
		t.Fatalf("iter %d: recovered %d registrations, want %d (CHAOS_SEED=%d reproduces)",
			iter, got, want, seed(t))
	}
	for name, reg := range live {
		item, err := re.LookupOne(registry.ByName(name))
		if err != nil {
			t.Fatalf("iter %d: acked registration %q lost (CHAOS_SEED=%d reproduces)",
				iter, name, seed(t))
		}
		if item.ID != reg.ServiceID {
			t.Fatalf("iter %d: %q recovered with ID %s, want %s", iter, name,
				item.ID.Short(), reg.ServiceID.Short())
		}
	}
}

// TestRegistryCrashRecoveryInvariants mirrors the space suite for the
// lookup service.
func TestRegistryCrashRecoveryInvariants(t *testing.T) {
	iters := 100
	if testing.Short() {
		iters = 15
	}
	rng := rand.New(rand.NewSource(seed(t)))
	for i := 0; i < iters; i++ {
		crashRegistryIteration(t, i, rng)
	}
}

// TestSpacerJobAcrossCrashRecovery is the federation-level smoke: a
// pull-mode job whose durable space dies mid-flight completes after
// recovery (the tier-1 sorcer suite covers this deterministically; here
// it runs under the chaos tag alongside the invariant sweeps).
func TestSpacerJobAcrossCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	openSp := func() (*space.Space, *wal.Log) {
		l, err := wal.Open(dir, wal.WithSyncEveryAppend(false))
		if err != nil {
			t.Fatal(err)
		}
		sp, err := space.Recover(clockwork.Real(), lease.Policy{Max: time.Hour}, l)
		if err != nil {
			t.Fatal(err)
		}
		return sp, l
	}
	sp, l := openSp()
	spacer := sorcer.NewSpacer("chaos-spacer", sp,
		sorcer.WithTaskTimeout(500*time.Millisecond),
		sorcer.WithAwaitPolicy(resilience.Policy{
			MaxAttempts: 40,
			BaseBackoff: 5 * time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
		}))

	var tasks []sorcer.Exertion
	for i := 0; i < 4; i++ {
		tasks = append(tasks, sorcer.NewTask(fmt.Sprintf("t%d", i),
			sorcer.Sig("Adder", "add"),
			sorcer.NewContextFrom("arg/a", float64(i), "arg/b", 1000.0)))
	}
	job := sorcer.NewJob("chaos-restart-job",
		sorcer.Strategy{Flow: sorcer.Parallel, Access: sorcer.Pull}, tasks...)

	done := make(chan error, 1)
	go func() {
		_, err := spacer.Service(job, nil)
		done <- err
	}()

	deadline := time.Now().Add(10 * time.Second)
	for sp.Count(space.NewEntry(sorcer.EnvelopeKind)) < 4 {
		if time.Now().After(deadline) {
			t.Fatal("envelopes never landed")
		}
		time.Sleep(time.Millisecond)
	}
	sp.Close()
	_ = l.Close()

	sp2, l2 := openSp()
	defer func() { sp2.Close(); _ = l2.Close() }()
	spacer.Rebind(sp2)
	inj := faults.New(seed(t), clockwork.Real())
	w := sorcer.NewSpaceWorker(sp2, faultyAdder("W-0", inj), "Adder")
	defer w.Stop()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("job failed across crash recovery: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("job did not complete after recovery")
	}
	for i := 0; i < 4; i++ {
		v, err := job.Context().Float(fmt.Sprintf("t%d/result/value", i))
		if err != nil || v != float64(i+1000) {
			t.Fatalf("t%d result = %v, %v", i, v, err)
		}
	}
}

// crashGroupCommitIteration drives concurrent appenders through a
// group-committing WAL with crash points armed at both the append site
// (torn partial frames) and the sync site (a batch fsync that dies),
// then recovers and checks the group-commit durability contract: every
// acknowledged append — acked only once the batch fsync covering it
// returned — survives replay, exactly once, with no corruption.
func crashGroupCommitIteration(t *testing.T, iter int, rng *rand.Rand) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.WithSegmentLimit(1<<12))
	if err != nil {
		t.Fatalf("iter %d: open wal: %v", iter, err)
	}
	inj := faults.New(rng.Int63(), clockwork.Real())
	inj.Set("gc"+wal.FaultSiteAppend, faults.Rule{ErrorRate: 0.01})
	inj.Set("gc"+wal.FaultSiteSync, faults.Rule{ErrorRate: 0.02})
	l.SetFaultInjector(inj, "gc")
	l.ArmTornWrites(rng.Int63())

	const workers = 8
	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		acked = make(map[uint64]string) // seq -> payload acked durable
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				payload := fmt.Sprintf("gc-%d-%d-%d", iter, w, i)
				seq, err := l.Append([]byte(payload))
				if err != nil {
					// The injected crash: this and every later append on
					// this worker is unacknowledged by definition.
					return
				}
				mu.Lock()
				if prev, dup := acked[seq]; dup {
					t.Errorf("iter %d: seq %d acked for both %q and %q", iter, seq, prev, payload)
				}
				acked[seq] = payload
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	_ = l.Close()

	re, err := wal.Open(dir)
	if err != nil {
		t.Fatalf("iter %d: reopen after crash: %v (CHAOS_SEED=%d reproduces)", iter, err, seed(t))
	}
	defer re.Close()
	replayed := make(map[uint64]string)
	err = re.Replay(func(seq uint64, payload []byte) error {
		if prev, dup := replayed[seq]; dup {
			t.Errorf("iter %d: seq %d replayed twice (%q, %q)", iter, seq, prev, payload)
		}
		replayed[seq] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("iter %d: replay: %v (CHAOS_SEED=%d reproduces)", iter, err, seed(t))
	}
	for seq, payload := range acked {
		got, ok := replayed[seq]
		if !ok {
			t.Fatalf("iter %d: acked seq %d (%q) lost in crash (CHAOS_SEED=%d reproduces)",
				iter, seq, payload, seed(t))
		}
		if got != payload {
			t.Fatalf("iter %d: seq %d recovered as %q, acked as %q (CHAOS_SEED=%d reproduces)",
				iter, seq, got, payload, seed(t))
		}
	}
}

// TestWALGroupCommitCrashRecoveryInvariants sweeps crash/recover
// iterations over concurrent group-committed appends: crashes land
// mid-batch — between records of a coalesced fsync, or in the fsync
// itself — and recovery must still replay exactly the acked prefix.
func TestWALGroupCommitCrashRecoveryInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(seed(t)))
	for i := 0; i < 25; i++ {
		crashGroupCommitIteration(t, i, rng)
	}
}
