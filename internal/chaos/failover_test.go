//go:build chaos

package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/faults"
	"sensorcer/internal/lease"
	"sensorcer/internal/repl"
	"sensorcer/internal/resilience"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/space"
	"sensorcer/internal/wal"
)

// The failover suite: model-based replication chaos. Each iteration
// drives a primary/backup shard pair through a seeded random mix of
// routed operations and coordinator-visible disasters — primary
// crashes with promotion, replication-link partitions, backup crashes,
// double failures with revival from the last primary's log — while a
// model tracks exactly which effects were ACKED. At the end the shard
// is drained through the router and the three replication invariants
// hold:
//
//  1. no acknowledged write is lost across any number of failovers,
//  2. no entry is served twice (an acked take stays taken on every
//     replica that can ever become primary),
//  3. no write is accepted under a stale epoch (a suspended or fenced
//     ex-primary refuses every ack until the coordinator reclaims it).
//
// Writes refused without an ack are indeterminate by definition: they
// may sit unacknowledged in an ex-primary's log and lawfully resurface
// if that log serves again (at-least-once), so the model keeps them in
// a separate "maybe" set that bounds — but never mandates — presence.

// failoverModel tracks acked, indeterminate and fencing-refused uids.
type failoverModel struct {
	nextUID int64
	present map[int64]bool // acked writes not yet acked-taken: must drain
	order   []int64        // acked uids in ack order, for deterministic picks
	maybe   map[int64]bool // unacked attempts: may or may not drain
	taken   map[int64]bool // acked takes: must never be served again
	refused map[int64]bool // refused pre-journal by the fence: must never drain
}

func newFailoverModel() *failoverModel {
	return &failoverModel{
		present: make(map[int64]bool),
		maybe:   make(map[int64]bool),
		taken:   make(map[int64]bool),
		refused: make(map[int64]bool),
	}
}

func (m *failoverModel) uid() int64 { m.nextUID++; return m.nextUID }

func (m *failoverModel) ack(uid int64) {
	m.present[uid] = true
	m.order = append(m.order, uid)
}

// pick removes and returns a seeded-random acked uid. Map iteration
// order is runtime-random, so picks go through the order slice to keep
// every run reproducible from CHAOS_SEED alone.
func (m *failoverModel) pick(rng *rand.Rand) (int64, bool) {
	if len(m.order) == 0 {
		return 0, false
	}
	i := rng.Intn(len(m.order))
	uid := m.order[i]
	m.order = append(m.order[:i], m.order[i+1:]...)
	return uid, true
}

func newFailoverNode(t *testing.T, name string) *repl.Node {
	t.Helper()
	n, err := repl.NewNode(name, clockwork.Real(), lease.Policy{Max: 24 * time.Hour},
		t.TempDir(), repl.WithWALOptions(wal.WithSyncEveryAppend(false)))
	if err != nil {
		t.Fatalf("new node %s: %v", name, err)
	}
	return n
}

// drainFailover empties the shard through the router and checks the
// model: every acked write present, nothing twice, nothing refused.
func drainFailover(t *testing.T, r *repl.Router, iter int, m *failoverModel, chaosSeed int64) {
	t.Helper()
	got := make(map[int64]bool)
	for {
		e, err := r.Take(space.NewEntry(envelopeKind), nil, 0)
		if errors.Is(err, space.ErrTimeout) {
			break
		}
		if err != nil {
			t.Fatalf("iter %d: draining shard: %v (CHAOS_SEED=%d reproduces)", iter, err, chaosSeed)
		}
		uid := int64(e.Field("uid").(float64))
		if got[uid] {
			t.Fatalf("iter %d: uid=%d drained twice (CHAOS_SEED=%d reproduces)", iter, uid, chaosSeed)
		}
		if m.taken[uid] {
			t.Fatalf("iter %d: uid=%d served again after an acked take (CHAOS_SEED=%d reproduces)", iter, uid, chaosSeed)
		}
		if m.refused[uid] {
			t.Fatalf("iter %d: uid=%d accepted under a stale epoch (CHAOS_SEED=%d reproduces)", iter, uid, chaosSeed)
		}
		if !m.present[uid] && !m.maybe[uid] {
			t.Fatalf("iter %d: uid=%d drained but never written (CHAOS_SEED=%d reproduces)", iter, uid, chaosSeed)
		}
		got[uid] = true
	}
	for uid := range m.present {
		if !got[uid] {
			t.Fatalf("iter %d: acked write uid=%d lost (CHAOS_SEED=%d reproduces)", iter, uid, chaosSeed)
		}
	}
}

// failoverIteration runs one seeded disaster sequence against a
// replicated shard and checks the model at the end.
func failoverIteration(t *testing.T, iter int, rng *rand.Rand, chaosSeed int64) {
	a := newFailoverNode(t, "a")
	b := newFailoverNode(t, "b")
	r, err := repl.NewRouter(clockwork.Real(),
		[]repl.ShardSpec{{Name: "s0", Primary: a, Backup: b}},
		repl.WithWriteWindow(5*time.Second))
	if err != nil {
		t.Fatalf("iter %d: new router: %v", iter, err)
	}
	defer func() { _ = r.Close() }()

	m := newFailoverModel()
	sh := r.Shard("s0")
	linkDown := errors.New("chaos: replication link down")

	nOps := 30 + rng.Intn(40)
	for op := 0; op < nOps; op++ {
		switch roll := rng.Float64(); {
		case roll < 0.40: // routed write: a nil error means durable on both
			uid := m.uid()
			if _, err := r.Write(uidEntry(uid), nil, 24*time.Hour); err != nil {
				t.Fatalf("iter %d op %d: routed write failed on a healthy shard: %v (CHAOS_SEED=%d reproduces)",
					iter, op, err, chaosSeed)
			}
			m.ack(uid)

		case roll < 0.50: // routed batch: one group commit, shipped as one batch
			n := 1 + rng.Intn(4)
			entries := make([]space.Entry, 0, n)
			uids := make([]int64, 0, n)
			for i := 0; i < n; i++ {
				uid := m.uid()
				uids = append(uids, uid)
				entries = append(entries, uidEntry(uid))
			}
			if _, err := r.WriteBatch(entries, nil, 24*time.Hour); err != nil {
				t.Fatalf("iter %d op %d: routed batch failed: %v (CHAOS_SEED=%d reproduces)",
					iter, op, err, chaosSeed)
			}
			for _, uid := range uids {
				m.ack(uid)
			}

		case roll < 0.60: // acked take: the entry must never be served again
			uid, ok := m.pick(rng)
			if !ok {
				continue
			}
			if _, err := r.Take(uidEntry(uid), nil, time.Second); err != nil {
				t.Fatalf("iter %d op %d: take of acked uid=%d failed: %v (CHAOS_SEED=%d reproduces)",
					iter, op, uid, err, chaosSeed)
			}
			delete(m.present, uid)
			m.taken[uid] = true

		case roll < 0.67: // checkpoint: compaction (and snapshot ship) mid-chaos
			if sp := sh.Primary().CurrentSpace(); sp != nil {
				_ = sp.Checkpoint()
			}

		case roll < 0.82: // primary crash → promotion (or solo crash → revival)
			cur := sh.Primary()
			if sh.BackupAttached() {
				cur.Kill()
				if _, err := r.Failover("s0"); err != nil {
					t.Fatalf("iter %d op %d: failover after primary kill: %v (CHAOS_SEED=%d reproduces)",
						iter, op, err, chaosSeed)
				}
				if rng.Float64() < 0.6 { // bring the corpse back as a backup
					if err := cur.Restart(); err != nil {
						t.Fatalf("iter %d op %d: restart: %v (CHAOS_SEED=%d reproduces)", iter, op, err, chaosSeed)
					}
					if err := r.Reattach("s0"); err != nil {
						t.Fatalf("iter %d op %d: reattach: %v (CHAOS_SEED=%d reproduces)", iter, op, err, chaosSeed)
					}
				}
			} else {
				// Double failure: the solo primary dies. Only its own log
				// holds every ack, so recovery restarts and re-promotes IT —
				// never the detached spare.
				cur.Kill()
				if err := cur.Restart(); err != nil {
					t.Fatalf("iter %d op %d: solo restart: %v (CHAOS_SEED=%d reproduces)", iter, op, err, chaosSeed)
				}
				if _, err := r.Revive("s0"); err != nil {
					t.Fatalf("iter %d op %d: revive: %v (CHAOS_SEED=%d reproduces)", iter, op, err, chaosSeed)
				}
				if rng.Float64() < 0.5 {
					_ = sh.Backup().Restart() // may already be up; Reattach resyncs either way
					if err := r.Reattach("s0"); err != nil {
						t.Fatalf("iter %d op %d: reattach after revive: %v (CHAOS_SEED=%d reproduces)",
							iter, op, err, chaosSeed)
					}
				}
			}

		case roll < 0.93: // promotion races: the losing primary must not ack
			if !sh.BackupAttached() {
				continue
			}
			pr, bk := sh.Primary(), sh.Backup()
			spOld := pr.CurrentSpace()
			if rng.Float64() < 0.5 {
				// Hard partition: every ship errors out, so the primary
				// suspends itself — durable locally is not durable enough.
				inj := faults.New(rng.Int63(), clockwork.Real())
				inj.Set(repl.FaultSiteShip, faults.Rule{ErrorRate: 1, Err: linkDown})
				bk.SetFaultInjector(inj, "")
				ghost := m.uid()
				if _, err := spOld.Write(uidEntry(ghost), nil, 24*time.Hour); !errors.Is(err, repl.ErrBackupUnavailable) {
					t.Fatalf("iter %d op %d: partitioned write = %v, want ErrBackupUnavailable (CHAOS_SEED=%d reproduces)",
						iter, op, err, chaosSeed)
				}
				m.maybe[ghost] = true // journaled locally, never acked
				if rng.Float64() < 0.5 {
					// The coordinator promotes the reachable backup...
					if _, err := r.Failover("s0"); err != nil {
						t.Fatalf("iter %d op %d: failover across partition: %v (CHAOS_SEED=%d reproduces)",
							iter, op, err, chaosSeed)
					}
					bk.SetFaultInjector(nil, "")
					// ...and the suspended ex-primary must refuse every ack.
					stale := m.uid()
					if _, err := spOld.Write(uidEntry(stale), nil, 24*time.Hour); err == nil {
						t.Fatalf("iter %d op %d: suspended ex-primary accepted a write (CHAOS_SEED=%d reproduces)",
							iter, op, chaosSeed)
					}
					m.refused[stale] = true
					if rng.Float64() < 0.7 {
						if err := r.Reattach("s0"); err != nil {
							t.Fatalf("iter %d op %d: reattach ex-primary: %v (CHAOS_SEED=%d reproduces)",
								iter, op, err, chaosSeed)
						}
					}
				} else {
					// ...or cuts the backup loose: the primary re-recovers
					// from its own log and serves solo, so the unacked ghost
					// may lawfully resurface (it stays in maybe).
					bk.SetFaultInjector(nil, "")
					if err := r.Detach("s0"); err != nil {
						t.Fatalf("iter %d op %d: detach: %v (CHAOS_SEED=%d reproduces)", iter, op, err, chaosSeed)
					}
				}
			} else {
				// The coordinator promotes the backup while the old primary
				// still believes it serves: its next ship bounces with a
				// stale epoch and fences it permanently.
				if _, err := r.Failover("s0"); err != nil {
					t.Fatalf("iter %d op %d: promotion behind primary's back: %v (CHAOS_SEED=%d reproduces)",
						iter, op, err, chaosSeed)
				}
				ghost := m.uid()
				if _, err := spOld.Write(uidEntry(ghost), nil, 24*time.Hour); !errors.Is(err, repl.ErrStaleEpoch) {
					t.Fatalf("iter %d op %d: superseded write = %v, want ErrStaleEpoch (CHAOS_SEED=%d reproduces)",
						iter, op, err, chaosSeed)
				}
				m.maybe[ghost] = true // journaled before the ship bounced
				if !pr.IsFenced() {
					t.Fatalf("iter %d op %d: superseded primary did not fence (CHAOS_SEED=%d reproduces)",
						iter, op, chaosSeed)
				}
				stale := m.uid()
				if _, err := spOld.Write(uidEntry(stale), nil, 24*time.Hour); err == nil {
					t.Fatalf("iter %d op %d: fenced primary accepted a write (CHAOS_SEED=%d reproduces)",
						iter, op, chaosSeed)
				}
				m.refused[stale] = true
				if rng.Float64() < 0.7 {
					if err := r.Reattach("s0"); err != nil {
						t.Fatalf("iter %d op %d: reattach fenced primary: %v (CHAOS_SEED=%d reproduces)",
							iter, op, err, chaosSeed)
					}
				}
			}

		default: // backup crash: the primary suspends rather than ack solo
			if !sh.BackupAttached() {
				continue
			}
			pr, bk := sh.Primary(), sh.Backup()
			spOld := pr.CurrentSpace()
			bk.Kill()
			ghost := m.uid()
			if _, err := spOld.Write(uidEntry(ghost), nil, 24*time.Hour); !errors.Is(err, repl.ErrBackupUnavailable) {
				t.Fatalf("iter %d op %d: write with dead backup = %v, want ErrBackupUnavailable (CHAOS_SEED=%d reproduces)",
					iter, op, err, chaosSeed)
			}
			m.maybe[ghost] = true
			if rng.Float64() < 0.5 {
				if err := bk.Restart(); err != nil {
					t.Fatalf("iter %d op %d: backup restart: %v (CHAOS_SEED=%d reproduces)", iter, op, err, chaosSeed)
				}
				if err := r.Reattach("s0"); err != nil {
					t.Fatalf("iter %d op %d: reattach restarted backup: %v (CHAOS_SEED=%d reproduces)",
						iter, op, err, chaosSeed)
				}
			} else {
				if err := r.Detach("s0"); err != nil {
					t.Fatalf("iter %d op %d: detach dead backup: %v (CHAOS_SEED=%d reproduces)",
						iter, op, err, chaosSeed)
				}
			}
		}
	}

	// When the pair ends attached, synchronous shipping means the logs
	// sit at the same position — replication never lags an ack.
	if sh.BackupAttached() {
		if pp, bp := sh.Primary().Log().NextSeq(), sh.Backup().Log().NextSeq(); pp != bp {
			t.Fatalf("iter %d: attached logs diverge: primary %d, backup %d (CHAOS_SEED=%d reproduces)",
				iter, pp, bp, chaosSeed)
		}
	}
	drainFailover(t, r, iter, m, chaosSeed)
}

// TestFailoverReplicationInvariants is the headline suite: 200 seeded
// primary-kill / partition / promotion iterations (25 under -short).
func TestFailoverReplicationInvariants(t *testing.T) {
	before := runtime.NumGoroutine()
	chaosSeed := seed(t)
	iters := 200
	if testing.Short() {
		iters = 25
	}
	rng := rand.New(rand.NewSource(chaosSeed))
	for i := 0; i < iters; i++ {
		failoverIteration(t, i, rng, chaosSeed)
	}
	checkGoroutines(t, before)
}

// TestFederationJobSurvivesPrimaryFailover runs a real federated job
// through a primary crash: the spacer and worker bind to the Router,
// the primary dies after the task envelopes are acked, the heartbeat
// monitor promotes the backup, and the job still completes with every
// result correct — no acked envelope lost, at-least-once end to end.
func TestFederationJobSurvivesPrimaryFailover(t *testing.T) {
	before := runtime.NumGoroutine()
	a := newFailoverNode(t, "fed-a")
	b := newFailoverNode(t, "fed-b")
	r, err := repl.NewRouter(clockwork.Real(),
		[]repl.ShardSpec{{Name: "s0", Primary: a, Backup: b}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	r.StartMonitor(5*time.Millisecond, 3)

	spacer := sorcer.NewSpacer("failover-spacer", r,
		sorcer.WithTaskTimeout(time.Second),
		sorcer.WithAwaitPolicy(resilience.Policy{
			MaxAttempts: 60,
			BaseBackoff: 5 * time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
		}))
	var tasks []sorcer.Exertion
	for i := 0; i < 4; i++ {
		tasks = append(tasks, sorcer.NewTask(fmt.Sprintf("t%d", i),
			sorcer.Sig("Adder", "add"),
			sorcer.NewContextFrom("arg/a", float64(i), "arg/b", 2000.0)))
	}
	job := sorcer.NewJob("failover-job",
		sorcer.Strategy{Flow: sorcer.Parallel, Access: sorcer.Pull}, tasks...)

	done := make(chan error, 1)
	go func() {
		_, serr := spacer.Service(job, nil)
		done <- serr
	}()

	// Wait for the task envelopes to be acked (durable on both nodes),
	// then kill the primary before any worker has seen them.
	deadline := time.Now().Add(10 * time.Second)
	for r.Count(space.NewEntry(sorcer.EnvelopeKind)) < 4 {
		if time.Now().After(deadline) {
			t.Fatal("task envelopes never landed")
		}
		time.Sleep(time.Millisecond)
	}
	a.Kill()

	// The worker binds after the crash: every envelope it serves can
	// only come from the promoted backup's replica.
	inj := faults.New(seed(t), clockwork.Real())
	w := sorcer.NewSpaceWorker(r, faultyAdder("W-failover", inj), "Adder")

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("job failed across failover: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("job did not complete after promotion")
	}
	if got := r.Shard("s0").Primary(); got != b {
		t.Fatalf("primary after failover = %s, want b", got.Name())
	}
	for i := 0; i < 4; i++ {
		v, err := job.Context().Float(fmt.Sprintf("t%d/result/value", i))
		if err != nil || v != float64(i+2000) {
			t.Fatalf("t%d result = %v, %v", i, v, err)
		}
	}

	w.Stop()
	if err := r.Close(); err != nil {
		t.Fatalf("router close: %v", err)
	}
	checkGoroutines(t, before)
}
