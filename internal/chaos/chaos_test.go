//go:build chaos

package chaos

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/faults"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/resilience"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/space"
	"sensorcer/internal/srpc"
	"sensorcer/internal/txn"
)

// seed returns the chaos seed: CHAOS_SEED when set, else 1, so runs are
// reproducible and CI pins a fixed sequence.
func seed(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", v, err)
		}
		return n
	}
	return 1
}

// faultRates is the sweep every federation scenario runs under.
var faultRates = []float64{0.05, 0.10, 0.20}

// checkGoroutines fails the test if goroutines leaked past the baseline
// once the federation has been torn down (with slack for runtime helpers).
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var after int
	for time.Now().Before(deadline) {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
}

// rig is a single-LUS in-process federation.
type rig struct {
	bus      *discovery.Bus
	lus      *registry.LookupService
	mgr      *discovery.Manager
	accessor *sorcer.Accessor
	cancel   func()
	joins    []*discovery.Join
}

func newRig() *rig {
	r := &rig{bus: discovery.NewBus()}
	r.lus = registry.New("chaos-lus", clockwork.Real())
	r.cancel = r.bus.Announce(r.lus)
	r.mgr = discovery.NewManager(r.bus)
	r.accessor = sorcer.NewAccessor(r.mgr)
	return r
}

func (r *rig) publish(p *sorcer.Provider) {
	r.joins = append(r.joins, p.Publish(clockwork.Real(), r.mgr, nil))
}

func (r *rig) close() {
	for _, j := range r.joins {
		j.Terminate()
	}
	r.mgr.Terminate()
	r.cancel()
	r.lus.Close()
}

// faultyAdder is an Adder provider whose op consults the injector at site
// "provider/<name>".
func faultyAdder(name string, inj *faults.Injector) *sorcer.Provider {
	p := sorcer.NewProvider(name, "Adder")
	site := "provider/" + name
	p.RegisterOp("add", func(ctx *sorcer.Context) error {
		if err := inj.Inject(site); err != nil {
			return err
		}
		a, err := ctx.Float("arg/a")
		if err != nil {
			return err
		}
		b, err := ctx.Float("arg/b")
		if err != nil {
			return err
		}
		ctx.Put("result/value", a+b)
		return nil
	})
	return p
}

// TestPushFederationUnderFaults drives push-mode FMI through providers
// failing at 5–20% rates: with rebinding, per-provider breakers and
// retries, every exertion either completes with the right value or fails
// cleanly, and nothing leaks.
func TestPushFederationUnderFaults(t *testing.T) {
	for _, rate := range faultRates {
		rate := rate
		t.Run(fmt.Sprintf("rate=%.0f%%", rate*100), func(t *testing.T) {
			before := runtime.NumGoroutine()
			inj := faults.New(seed(t), clockwork.Real())
			inj.SetDefault(faults.Rule{ErrorRate: rate})
			r := newRig()
			for i := 0; i < 4; i++ {
				r.publish(faultyAdder(fmt.Sprintf("Adder-%d", i), inj))
			}
			ex := sorcer.NewExerter(r.accessor,
				sorcer.WithBreakers(resilience.NewBreakerSet(clockwork.Real(), resilience.BreakerConfig{
					FailureThreshold: 5,
					Cooldown:         50 * time.Millisecond,
				})),
				sorcer.WithRebindPolicy(resilience.Policy{
					MaxAttempts: 3,
					BaseBackoff: time.Millisecond,
					MaxBackoff:  5 * time.Millisecond,
				}))

			const exertions = 200
			succeeded := 0
			for i := 0; i < exertions; i++ {
				task := sorcer.NewTask("add", sorcer.Sig("Adder", "add"),
					sorcer.NewContextFrom("arg/a", float64(i), "arg/b", 1.0))
				res, err := ex.Exert(task, nil)
				if err != nil {
					// Clean failure: the error must say every binding was
					// tried, not be a hang or a panic.
					continue
				}
				v, err := res.Context().Float("result/value")
				if err != nil || v != float64(i+1) {
					t.Fatalf("exertion %d returned corrupt result: %v %v", i, v, err)
				}
				succeeded++
			}
			// With 4 equivalent providers and rebinding, the federation
			// absorbs these fault rates almost entirely.
			if succeeded < exertions*9/10 {
				t.Fatalf("only %d/%d exertions completed at rate %.0f%%", succeeded, exertions, rate*100)
			}
			t.Logf("rate %.0f%%: %d/%d exertions completed", rate*100, succeeded, exertions)
			r.close()
			checkGoroutines(t, before)
		})
	}
}

// TestPullFederationUnderFaults drives pull-mode federation through a
// tuple space losing writes and failing takes: the spacer's await policy
// redispatches lost envelopes and jobs complete.
func TestPullFederationUnderFaults(t *testing.T) {
	for _, rate := range faultRates {
		rate := rate
		t.Run(fmt.Sprintf("rate=%.0f%%", rate*100), func(t *testing.T) {
			before := runtime.NumGoroutine()
			inj := faults.New(seed(t), clockwork.Real())
			// Workers and the spacer share the space; losing writes
			// loses both envelopes and results.
			inj.Set("space"+space.FaultSiteWrite, faults.Rule{DropRate: rate})
			r := newRig()
			sp := space.New(clockwork.Real(), lease.Policy{Max: time.Hour})
			sp.SetFaultInjector(inj, "space")

			var workers []*sorcer.SpaceWorker
			for i := 0; i < 3; i++ {
				workers = append(workers, sorcer.NewSpaceWorker(sp, faultyAdder(fmt.Sprintf("W-%d", i), inj), "Adder"))
			}
			spacer := sorcer.NewSpacer("chaos-spacer", sp,
				sorcer.WithTaskTimeout(100*time.Millisecond),
				sorcer.WithAwaitPolicy(resilience.Policy{
					MaxAttempts: 50,
					BaseBackoff: time.Millisecond,
					MaxBackoff:  10 * time.Millisecond,
				}))
			join := sorcer.PublishServicer(clockwork.Real(), r.mgr, spacer, spacer.ID(), spacer.Name(),
				[]string{sorcer.SpacerType}, nil)
			exerter := sorcer.NewExerter(r.accessor)

			const jobs = 10
			completed := 0
			for j := 0; j < jobs; j++ {
				var tasks []sorcer.Exertion
				for i := 0; i < 4; i++ {
					tasks = append(tasks, sorcer.NewTask(fmt.Sprintf("t%d", i),
						sorcer.Sig("Adder", "add"),
						sorcer.NewContextFrom("arg/a", float64(i), "arg/b", 10.0)))
				}
				job := sorcer.NewJob(fmt.Sprintf("job-%d", j),
					sorcer.Strategy{Flow: sorcer.Parallel, Access: sorcer.Pull}, tasks...)
				res, err := exerter.Exert(job, nil)
				if err != nil {
					continue // clean failure (a task kept failing in space)
				}
				for i := 0; i < 4; i++ {
					v, err := res.Context().Float(fmt.Sprintf("t%d/result/value", i))
					if err != nil || v != float64(i+10) {
						t.Fatalf("job %d task %d corrupt: %v %v", j, i, v, err)
					}
				}
				completed++
			}
			if completed < jobs/2 {
				t.Fatalf("only %d/%d pull jobs completed at rate %.0f%%", completed, jobs, rate*100)
			}
			t.Logf("rate %.0f%%: %d/%d pull jobs completed", rate*100, completed, jobs)

			join.Terminate()
			for _, w := range workers {
				w.Stop()
			}
			sp.Close()
			r.close()
			checkGoroutines(t, before)
		})
	}
}

// TestSrpcUnderFaults hammers the transport with injected send errors and
// dropped requests: under a retry policy with per-attempt deadlines, every
// call either succeeds or fails with a classified error — never hangs.
func TestSrpcUnderFaults(t *testing.T) {
	for _, rate := range faultRates {
		rate := rate
		t.Run(fmt.Sprintf("rate=%.0f%%", rate*100), func(t *testing.T) {
			before := runtime.NumGoroutine()
			s := srpc.NewServer()
			srpc.HandleFunc(s, "add", func(p struct {
				A float64 `json:"a"`
				B float64 `json:"b"`
			}) (any, error) {
				return p.A + p.B, nil
			})
			if err := s.Listen("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			c, err := srpc.Dial(s.Addr(), time.Second)
			if err != nil {
				t.Fatal(err)
			}
			inj := faults.New(seed(t), clockwork.Real())
			inj.Set("client"+srpc.FaultSiteSend, faults.Rule{ErrorRate: rate / 2, DropRate: rate / 2})
			c.SetFaultInjector(inj, "client")

			policy := resilience.Policy{
				MaxAttempts:    4,
				BaseBackoff:    time.Millisecond,
				MaxBackoff:     5 * time.Millisecond,
				AttemptTimeout: 150 * time.Millisecond,
			}
			const calls = 150
			succeeded := 0
			for i := 0; i < calls; i++ {
				var out float64
				err := policy.Run(func(at resilience.Attempt) error {
					return c.CallWithTimeout("add", map[string]float64{"a": float64(i), "b": 1}, &out, at.Timeout)
				})
				if err != nil {
					if !errors.Is(err, faults.ErrInjected) && !errors.Is(err, srpc.ErrTimeout) {
						t.Fatalf("call %d failed with unclassified error: %v", i, err)
					}
					continue
				}
				if out != float64(i+1) {
					t.Fatalf("call %d corrupt result %v", i, out)
				}
				succeeded++
			}
			if succeeded < calls*3/4 {
				t.Fatalf("only %d/%d calls survived rate %.0f%%", succeeded, calls, rate*100)
			}
			t.Logf("rate %.0f%%: %d/%d calls completed", rate*100, succeeded, calls)
			c.Close()
			s.Close()
			checkGoroutines(t, before)
		})
	}
}

// TestLeaseExpiryEvictsCrashedProvider registers a provider whose renewal
// stops when it crashes: after its lease term passes (fake clock), the
// lookup service no longer lists it — the paper's self-healing semantics.
func TestLeaseExpiryEvictsCrashedProvider(t *testing.T) {
	fc := clockwork.NewFake(time.Unix(0, 0))
	lus := registry.New("lus", fc, registry.WithLeasePolicy(lease.Policy{Max: time.Minute}))
	defer lus.Close()

	crash := &faults.Crash{}
	p := sorcer.NewProvider("Crashy", "Adder")
	reg, err := lus.Register(registry.ServiceItem{ID: p.ID(), Service: p, Types: p.Types()}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(lus.Lookup(registry.Template{Types: []string{"Adder"}}, 10)) != 1 {
		t.Fatal("provider not registered")
	}

	// Renew while alive: the crashed switch models the provider's renewal
	// loop dying with the process.
	renew := func() error {
		if err := crash.Check(); err != nil {
			return err
		}
		return reg.Lease.Renew(time.Minute)
	}
	fc.Advance(30 * time.Second)
	if err := renew(); err != nil {
		t.Fatalf("healthy renewal failed: %v", err)
	}

	crash.Crash()
	fc.Advance(30 * time.Second)
	if err := renew(); !errors.Is(err, faults.ErrCrashed) {
		t.Fatalf("crashed renewal = %v", err)
	}
	// Past the lease term without renewal: sweep evicts the registration.
	fc.Advance(45 * time.Second)
	lus.SweepNow()
	if n := len(lus.Lookup(registry.Template{Types: []string{"Adder"}}, 10)); n != 0 {
		t.Fatalf("crashed provider still listed (%d)", n)
	}
}

// TestBreakerOpensAndRecovers crashes a provider until its breaker opens,
// then recovers it and watches the half-open probe close the breaker.
func TestBreakerOpensAndRecovers(t *testing.T) {
	crash := &faults.Crash{}
	r := newRig()
	defer r.close()
	p := sorcer.NewProvider("Crashy", "Adder")
	p.RegisterOp("add", func(ctx *sorcer.Context) error {
		if err := crash.Check(); err != nil {
			return err
		}
		ctx.Put("result/value", 42.0)
		return nil
	})
	r.publish(p)

	breakers := resilience.NewBreakerSet(clockwork.Real(), resilience.BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         30 * time.Millisecond,
	})
	ex := sorcer.NewExerter(r.accessor, sorcer.WithBreakers(breakers))
	exert := func() error {
		task := sorcer.NewTask("add", sorcer.Sig("Adder", "add"), nil)
		_, err := ex.Exert(task, nil)
		return err
	}

	crash.Crash()
	for i := 0; i < 5; i++ {
		if err := exert(); err == nil {
			t.Fatal("crashed provider served a task")
		}
	}
	states := ex.BreakerStates()
	if len(states) != 1 {
		t.Fatalf("breaker states = %v", states)
	}
	for _, st := range states {
		if st != resilience.Open {
			t.Fatalf("breaker state = %v, want Open after repeated crashes", st)
		}
	}

	crash.Recover()
	time.Sleep(50 * time.Millisecond) // past the cooldown: half-open probe allowed
	if err := exert(); err != nil {
		t.Fatalf("recovered provider still refused: %v", err)
	}
	for _, st := range ex.BreakerStates() {
		if st != resilience.Closed {
			t.Fatalf("breaker state = %v, want Closed after successful probe", st)
		}
	}
}

// TestExertionsFailCleanlyWhenAllProvidersDead: a federation whose every
// provider is crashed must fail each exertion with a bounded, classified
// error — the resilience layer never hangs and never leaks.
func TestExertionsFailCleanlyWhenAllProvidersDead(t *testing.T) {
	before := runtime.NumGoroutine()
	crash := &faults.Crash{}
	r := newRig()
	for i := 0; i < 3; i++ {
		p := sorcer.NewProvider(fmt.Sprintf("Dead-%d", i), "Adder")
		p.RegisterOp("add", func(*sorcer.Context) error { return crash.Check() })
		r.publish(p)
	}
	crash.Crash()
	ex := sorcer.NewExerter(r.accessor, sorcer.WithRebindPolicy(resilience.Policy{
		MaxAttempts: 2,
		BaseBackoff: time.Millisecond,
	}))
	for i := 0; i < 20; i++ {
		task := sorcer.NewTask("add", sorcer.Sig("Adder", "add"), nil)
		start := time.Now()
		_, err := ex.Exert(task, nil)
		if err == nil {
			t.Fatal("dead federation completed an exertion")
		}
		if !errors.Is(err, faults.ErrCrashed) {
			t.Fatalf("unclassified failure: %v", err)
		}
		if time.Since(start) > 2*time.Second {
			t.Fatalf("failure took %v — not bounded", time.Since(start))
		}
	}
	r.close()
	checkGoroutines(t, before)
}

// TestTransactionalTakeSurvivesFaultyCohort: a space take under a
// transaction whose cohort aborts must restore the entry, also while the
// space is injecting take faults around it.
func TestTransactionalTakeSurvivesFaultyCohort(t *testing.T) {
	inj := faults.New(seed(t), clockwork.Real())
	inj.Set("space"+space.FaultSiteTake, faults.Rule{ErrorRate: 0.2})
	fc := clockwork.Real()
	sp := space.New(fc, lease.Policy{Max: time.Hour})
	defer sp.Close()
	sp.SetFaultInjector(inj, "space")
	tm := txn.NewManager(fc, lease.Policy{Max: time.Hour})

	if _, err := sp.Write(space.NewEntry("Tok"), nil, time.Hour); err != nil {
		t.Fatal(err)
	}
	take := resilience.Policy{MaxAttempts: 20, BaseBackoff: time.Millisecond}
	for round := 0; round < 25; round++ {
		tx, _ := tm.Create(time.Hour)
		err := take.Run(func(resilience.Attempt) error {
			_, err := sp.Take(space.NewEntry("Tok"), tx, 50*time.Millisecond)
			return err
		})
		if err != nil {
			t.Fatalf("round %d: take never succeeded: %v", round, err)
		}
		if err := tx.Abort(); err != nil {
			t.Fatalf("round %d: abort: %v", round, err)
		}
		// The abort restored the token for the next round.
	}
	if n := sp.Count(space.NewEntry("Tok")); n != 1 {
		t.Fatalf("token count = %d after aborted rounds", n)
	}
}
