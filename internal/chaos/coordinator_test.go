//go:build chaos

package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"sensorcer/internal/clockwork"
	"sensorcer/internal/lease"
	"sensorcer/internal/registry"
	"sensorcer/internal/repl"
)

// The coordinator suite: chaos for the coordination plane itself. Each
// iteration stands up a replicated shard, a registry hosting the
// coordination lease, and two coordinator replicas competing for it,
// then drives a seeded mix of routed operations and control-plane
// disasters — leader kills (lease lapse) and orderly abdications,
// lease-expiry races where a stale holder's token must bounce,
// split-brain (a deposed coordinator keeps issuing decisions with its
// old token), live shard handoffs racing the traffic, and mid-handoff
// target crashes. The PR 6 data-plane invariants must survive every
// sequence: no acked write lost, nothing served twice, nothing accepted
// under a stale fencing token — and additionally no decision carrying a
// superseded coordinator generation may ever change the configuration.

// coordChaos bundles one iteration's control plane.
type coordChaos struct {
	t         *testing.T
	iter      int
	chaosSeed int64
	lus       *registry.LookupService
	r         *repl.Router
	coords    []*repl.Coordinator
	nextName  int
}

// coordChaosCfg is the replicas' shared config: terms short enough that
// takeover happens within a few milliseconds of a lapse.
var coordChaosCfg = repl.CoordinatorConfig{
	Term:     60 * time.Millisecond,
	Interval: 5 * time.Millisecond,
	Misses:   3,
}

// spawn starts one more coordinator replica competing for the lease.
func (c *coordChaos) spawn() *repl.Coordinator {
	c.nextName++
	co := repl.NewCoordinator(fmt.Sprintf("replica-%d", c.nextName),
		clockwork.Real(), c.lus, c.r, coordChaosCfg)
	co.Start()
	c.coords = append(c.coords, co)
	return co
}

// leader waits for some live replica to hold the lease and returns it
// with its token.
func (c *coordChaos) leader() (*repl.Coordinator, uint64) {
	c.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		for _, co := range c.coords {
			if tok, ok := co.Leading(); ok {
				return co, tok
			}
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("iter %d: no coordinator won the lease (CHAOS_SEED=%d reproduces)", c.iter, c.chaosSeed)
		}
		time.Sleep(time.Millisecond)
	}
}

// stopAll stops every replica (idempotent; dead ones no-op).
func (c *coordChaos) stopAll() {
	for _, co := range c.coords {
		co.Stop()
	}
}

// coordinatorIteration runs one seeded control-plane disaster sequence
// and checks the model at the end.
func coordinatorIteration(t *testing.T, iter int, rng *rand.Rand, chaosSeed int64) {
	a := newFailoverNode(t, "a")
	b := newFailoverNode(t, "b")
	r, err := repl.NewRouter(clockwork.Real(),
		[]repl.ShardSpec{{Name: "s0", Primary: a, Backup: b}},
		repl.WithWriteWindow(10*time.Second))
	if err != nil {
		t.Fatalf("iter %d: new router: %v", iter, err)
	}
	defer func() { _ = r.Close() }()

	lus := registry.New("chaos-lus", clockwork.Real(),
		registry.WithCoordLeasePolicy(lease.Policy{Max: time.Minute, Min: time.Millisecond}))
	defer lus.Close()

	cc := &coordChaos{t: t, iter: iter, chaosSeed: chaosSeed, lus: lus, r: r}
	defer cc.stopAll()

	// Lease-expiry race prologue on some iterations: a holder acquires
	// with a term so short it lapses before the replicas even start.
	// The first replica's acquisition must dominate its token, and every
	// decision the expired holder issues with it must bounce.
	var expired *lease.FencedGrant
	if rng.Float64() < 0.3 {
		g, err := lus.AcquireCoordination(repl.DefaultCoordResource, "expired-holder", time.Millisecond)
		if err != nil {
			t.Fatalf("iter %d: expiry-race acquire: %v (CHAOS_SEED=%d reproduces)", iter, err, chaosSeed)
		}
		expired = &g
		time.Sleep(5 * time.Millisecond)
	}

	cc.spawn()
	cc.spawn()
	_, firstTok := cc.leader()

	if expired != nil {
		if firstTok <= expired.Token {
			t.Fatalf("iter %d: successor token %d does not dominate expired holder's %d (CHAOS_SEED=%d reproduces)",
				iter, firstTok, expired.Token, chaosSeed)
		}
		if err := expired.Lease.Renew(time.Second); !errors.Is(err, lease.ErrUnknownLease) {
			t.Fatalf("iter %d: expired holder renewal = %v, want ErrUnknownLease (CHAOS_SEED=%d reproduces)",
				iter, err, chaosSeed)
		}
	}

	m := newFailoverModel()
	sh := r.Shard("s0")
	var staleTokens []uint64 // tokens of deposed or expired coordinators
	if expired != nil {
		staleTokens = append(staleTokens, expired.Token)
	}
	var retired []*repl.Node // nodes rotated out by rebalances
	defer func() {
		for _, n := range retired {
			_ = n.Close()
		}
	}()

	// waitPrimary waits for the lease holder to promote someone after a
	// primary kill.
	waitPrimary := func(not *repl.Node) *repl.Node {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			if cur := sh.Primary(); cur != not {
				return cur
			}
			if time.Now().After(deadline) {
				t.Fatalf("iter %d: lease holder never promoted a replacement primary (CHAOS_SEED=%d reproduces)",
					iter, chaosSeed)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// reattach restores redundancy after a failover, retrying the races
	// inherent in sharing the coordinator role with the lease holder.
	reattach := func(n *repl.Node) {
		t.Helper()
		if err := n.Restart(); err != nil {
			t.Fatalf("iter %d: restart for reattach: %v (CHAOS_SEED=%d reproduces)", iter, err, chaosSeed)
		}
		deadline := time.Now().Add(15 * time.Second)
		for {
			err := r.Reattach("s0")
			if err == nil {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("iter %d: reattach never succeeded: %v (CHAOS_SEED=%d reproduces)", iter, err, chaosSeed)
			}
			time.Sleep(time.Millisecond)
		}
	}

	nOps := 20 + rng.Intn(25)
	for op := 0; op < nOps; op++ {
		switch roll := rng.Float64(); {
		case roll < 0.35: // routed write: coordinator churn must be invisible
			uid := m.uid()
			if _, err := r.Write(uidEntry(uid), nil, 24*time.Hour); err != nil {
				t.Fatalf("iter %d op %d: routed write failed under coordinator chaos: %v (CHAOS_SEED=%d reproduces)",
					iter, op, err, chaosSeed)
			}
			m.ack(uid)

		case roll < 0.45: // acked take: must never be served again
			uid, ok := m.pick(rng)
			if !ok {
				continue
			}
			if _, err := r.Take(uidEntry(uid), nil, 5*time.Second); err != nil {
				t.Fatalf("iter %d op %d: take of acked uid=%d failed: %v (CHAOS_SEED=%d reproduces)",
					iter, op, uid, err, chaosSeed)
			}
			delete(m.present, uid)
			m.taken[uid] = true

		case roll < 0.52: // checkpoint mid-chaos
			if sp := sh.Primary().CurrentSpace(); sp != nil {
				_ = sp.Checkpoint()
			}

		case roll < 0.68: // leader dies (lease lapses) or abdicates; standby takes over
			ld, tok := cc.leader()
			if rng.Float64() < 0.5 {
				ld.Kill() // no abdication: the standby waits out the term
			} else {
				ld.Stop() // orderly: the lease is cancelled, takeover is immediate
			}
			staleTokens = append(staleTokens, tok)
			cc.spawn() // keep >= 2 live replicas competing
			_, newTok := cc.leader()
			if newTok <= tok {
				t.Fatalf("iter %d op %d: successor token %d does not dominate %d (CHAOS_SEED=%d reproduces)",
					iter, op, newTok, tok, chaosSeed)
			}

		case roll < 0.80: // split-brain: a deposed coordinator keeps deciding
			if len(staleTokens) == 0 {
				continue
			}
			stale := staleTokens[rng.Intn(len(staleTokens))]
			genBefore, epochBefore, primBefore := sh.Gen(), sh.Epoch(), sh.Primary()
			if _, err := r.FailoverAs(stale, "s0"); !errors.Is(err, repl.ErrStaleEpoch) {
				t.Fatalf("iter %d op %d: stale-token failover = %v, want ErrStaleEpoch (CHAOS_SEED=%d reproduces)",
					iter, op, err, chaosSeed)
			}
			if _, err := r.RebalanceAs(stale, "s0", nil); !errors.Is(err, repl.ErrStaleEpoch) {
				t.Fatalf("iter %d op %d: stale-token rebalance = %v, want ErrStaleEpoch (CHAOS_SEED=%d reproduces)",
					iter, op, err, chaosSeed)
			}
			if err := r.DetachAs(stale, "s0"); !errors.Is(err, repl.ErrStaleEpoch) {
				t.Fatalf("iter %d op %d: stale-token detach = %v, want ErrStaleEpoch (CHAOS_SEED=%d reproduces)",
					iter, op, err, chaosSeed)
			}
			if sh.Gen() < genBefore || sh.Epoch() != epochBefore || sh.Primary() != primBefore {
				t.Fatalf("iter %d op %d: a stale coordinator decision changed the configuration (CHAOS_SEED=%d reproduces)",
					iter, op, chaosSeed)
			}

		case roll < 0.90: // live handoff racing traffic; sometimes the target is a corpse
			if !sh.BackupAttached() {
				continue
			}
			target := newFailoverNode(t, fmt.Sprintf("target-%d", op))
			if rng.Float64() < 0.35 {
				// Mid-handoff crash: the target dies while the source is
				// seeding it. The handoff must fail without hurting the
				// serving pair.
				target.Kill()
				primBefore := sh.Primary()
				if _, err := r.Rebalance("s0", target); err == nil {
					t.Fatalf("iter %d op %d: handoff to a corpse succeeded (CHAOS_SEED=%d reproduces)",
						iter, op, chaosSeed)
				}
				retired = append(retired, target)
				if sh.Primary() != primBefore {
					t.Fatalf("iter %d op %d: failed handoff displaced the primary (CHAOS_SEED=%d reproduces)",
						iter, op, chaosSeed)
				}
				uid := m.uid()
				if _, err := r.Write(uidEntry(uid), nil, 24*time.Hour); err != nil {
					t.Fatalf("iter %d op %d: write after failed handoff: %v (CHAOS_SEED=%d reproduces)",
						iter, op, err, chaosSeed)
				}
				m.ack(uid)
			} else {
				old, err := r.Rebalance("s0", target)
				if err != nil {
					// A concurrent takeover may have raised the generation
					// between reading r.Gen() and the decision landing;
					// that bounce is lawful — anything else is not.
					if errors.Is(err, repl.ErrStaleEpoch) {
						retired = append(retired, target)
						continue
					}
					t.Fatalf("iter %d op %d: rebalance: %v (CHAOS_SEED=%d reproduces)", iter, op, err, chaosSeed)
				}
				if old != nil {
					retired = append(retired, old)
				}
				if sh.Primary() != target {
					t.Fatalf("iter %d op %d: rebalance did not install the target (CHAOS_SEED=%d reproduces)",
						iter, op, chaosSeed)
				}
			}

		default: // primary crash: the lease holder must notice and promote
			if !sh.BackupAttached() {
				continue
			}
			cur := sh.Primary()
			cur.Kill()
			next := waitPrimary(cur)
			uid := m.uid()
			if _, err := r.Write(uidEntry(uid), nil, 24*time.Hour); err != nil {
				t.Fatalf("iter %d op %d: write after leader-driven failover: %v (CHAOS_SEED=%d reproduces)",
					iter, op, err, chaosSeed)
			}
			m.ack(uid)
			if sh.Primary() != next {
				t.Fatalf("iter %d op %d: primary moved again without a disaster (CHAOS_SEED=%d reproduces)",
					iter, op, chaosSeed)
			}
			reattach(cur)
		}
	}

	// The adopted generation must dominate every deposed token.
	gen := r.Gen()
	for _, stale := range staleTokens {
		if gen <= stale {
			t.Fatalf("iter %d: router generation %d does not dominate deposed token %d (CHAOS_SEED=%d reproduces)",
				iter, gen, stale, chaosSeed)
		}
	}

	// Quiesce the control plane, then drain and check the data-plane
	// invariants exactly as the failover suite does.
	cc.stopAll()
	drainFailover(t, r, iter, m, chaosSeed)
}

// TestCoordinatorChaosInvariants is the control-plane suite: 200 seeded
// iterations of coordinator-kill / lease-expiry race / split-brain /
// mid-handoff-crash (25 under -short).
func TestCoordinatorChaosInvariants(t *testing.T) {
	before := runtime.NumGoroutine()
	chaosSeed := seed(t)
	iters := 200
	if testing.Short() {
		iters = 25
	}
	rng := rand.New(rand.NewSource(chaosSeed))
	for i := 0; i < iters; i++ {
		coordinatorIteration(t, i, rng, chaosSeed)
	}
	checkGoroutines(t, before)
}

// TestRebalanceUnderCoordinatorChurn moves a shard between nodes while
// writers hammer it AND the coordination lease changes hands mid-flight:
// the handoff's decisions carry whatever generation was current when
// they were made, so a takeover either lets the handoff complete or
// bounces it cleanly — never a torn flip. Acked writes survive whichever
// way it lands.
func TestRebalanceUnderCoordinatorChurn(t *testing.T) {
	before := runtime.NumGoroutine()
	chaosSeed := seed(t)
	rng := rand.New(rand.NewSource(chaosSeed))
	iters := 20
	if testing.Short() {
		iters = 5
	}
	for iter := 0; iter < iters; iter++ {
		func() {
			a := newFailoverNode(t, "a")
			b := newFailoverNode(t, "b")
			r, err := repl.NewRouter(clockwork.Real(),
				[]repl.ShardSpec{{Name: "s0", Primary: a, Backup: b}},
				repl.WithWriteWindow(10*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = r.Close() }()
			lus := registry.New("chaos-lus", clockwork.Real(),
				registry.WithCoordLeasePolicy(lease.Policy{Max: time.Minute, Min: time.Millisecond}))
			defer lus.Close()
			cc := &coordChaos{t: t, iter: iter, chaosSeed: chaosSeed, lus: lus, r: r}
			defer cc.stopAll()
			cc.spawn()
			cc.spawn()
			cc.leader()

			m := newFailoverModel()
			// Writers run throughout; every nil error is an ack the drain
			// must find. A refused write may still have journaled before
			// its ship bounced, so unacked attempts land in the maybe set.
			var ackedUIDs, attemptedUIDs []int64 // written by the goroutine, read after writerDone
			stop := make(chan struct{})
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				uid := int64(1_000_000)
				for {
					select {
					case <-stop:
						return
					default:
					}
					uid++
					attemptedUIDs = append(attemptedUIDs, uid)
					if _, err := r.Write(uidEntry(uid), nil, 24*time.Hour); err == nil {
						ackedUIDs = append(ackedUIDs, uid)
					}
				}
			}()

			target := newFailoverNode(t, fmt.Sprintf("churn-target-%d", iter))
			// Kill the leader mid-handoff on half the iterations.
			if rng.Float64() < 0.5 {
				ld, _ := cc.leader()
				ld.Kill()
				cc.spawn()
			}
			old, err := r.Rebalance("s0", target)
			if err != nil && !errors.Is(err, repl.ErrStaleEpoch) {
				t.Fatalf("iter %d: rebalance under churn: %v (CHAOS_SEED=%d reproduces)", iter, err, chaosSeed)
			}
			close(stop)
			<-writerDone
			for _, uid := range attemptedUIDs {
				m.maybe[uid] = true
			}
			for _, uid := range ackedUIDs {
				delete(m.maybe, uid)
				m.ack(uid)
			}
			cc.stopAll()
			drainFailover(t, r, iter, m, chaosSeed)
			if old != nil {
				_ = old.Close()
			} else {
				_ = target.Close()
			}
		}()
	}
	checkGoroutines(t, before)
}
