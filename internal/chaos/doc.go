// Package chaos holds the fault-injection test suite: federations driven
// under seeded probabilistic faults (provider errors, dropped messages,
// crashed workers, partitioned nodes) while the resilience layer —
// retries, backoff, per-attempt deadlines, circuit breakers, lease expiry
// — keeps exertions either completing or failing cleanly.
//
// The suite is build-tagged so ordinary test runs skip it:
//
//	go test -tags chaos ./internal/chaos -count=1
//
// or `make chaos`. Runs are deterministic for a fixed seed; set CHAOS_SEED
// to replay a particular sequence (default 1).
package chaos
