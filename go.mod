module sensorcer

go 1.22
