GO ?= go

.PHONY: all build vet test race short bench experiments examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -count=1

race:
	$(GO) test ./... -count=1 -race

short:
	$(GO) test ./... -count=1 -short

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/farm
	$(GO) run ./examples/failover
	$(GO) run ./examples/airvehicle
	$(GO) run ./examples/metacompute

cover:
	$(GO) test ./internal/... -cover -count=1

clean:
	$(GO) clean ./...
