GO ?= go

.PHONY: all build vet lint test race race-stress short fuzz-seeds bench bench-smoke bench-compare chaos chaos-recovery chaos-failover chaos-coordinator experiments examples cover clean

# Seed for the fault-injection suite; override to replay a sequence:
#   make chaos CHAOS_SEED=42
CHAOS_SEED ?= 1

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific invariants (clock, goroutine, lock/RPC, fault-site,
# context, lifecycle-error discipline) plus the whole-program analyzers
# (deepblock, lockorder, noalloc); see DESIGN.md "Enforced invariants"
# and "Whole-program invariants". `go vet` runs first so the stock
# checks gate alongside the project-specific ones.
lint: vet
	$(GO) run ./cmd/sensorlint ./...

test:
	$(GO) test ./... -count=1

race:
	$(GO) test ./... -count=1 -race

# The concurrency hot spots under the race detector: the space stress
# test plus reduced-iteration (-short) chaos and chaos-failover sweeps.
# Seeded like the chaos targets — a failure prints the CHAOS_SEED to
# replay with.
race-stress:
	$(GO) test ./internal/space -count=1 -race -run TestSpaceStressIndexedConcurrency
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -tags chaos -race -short ./internal/chaos -count=1
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -tags chaos -race -short ./internal/chaos -count=1 \
		-run 'FailoverReplicationInvariants|FederationJobSurvivesPrimaryFailover'

short:
	$(GO) test ./... -count=1 -short

# Run the wire/srpc fuzz targets over their seed corpora (the checked-in
# testdata/fuzz files plus the in-code f.Add seeds): the never-panic /
# bounded-allocation properties of the frame decoder, without paying for
# open-ended fuzzing. For a real fuzz session:
#   go test ./internal/srpc -fuzz FuzzDecodeFrame -fuzztime 60s
fuzz-seeds:
	$(GO) test ./internal/srpc ./internal/wire -count=1 -run '^Fuzz'

# Full benchmark suite; results land in $(BENCH_OUT) (op name -> ns/op,
# B/op, allocs/op, custom metrics like wirebytes/op) so later PRs have a
# perf trajectory to compare against.
BENCH_OUT ?= BENCH_PR9.json
bench:
	$(GO) test -run '^$$' -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# One iteration per benchmark: proves the suite and the JSON emitter still
# run, without CI paying for real measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime 1x -benchmem ./... | $(GO) run ./cmd/benchjson -o /dev/null

# Diff a fresh 100x smoke run against the checked-in baseline and fail
# on regressions past the threshold. 100 iterations amortize cold-start
# (a 1x run inflates sub-microsecond benchmarks 40x) yet the whole
# sweep stays under ~10s; the threshold is still loose because the
# baseline came from full-length runs — this gate catches
# order-of-magnitude cliffs, not percent-level drift. For the tight
# version run `make bench` on both commits and
# `benchjson -compare -threshold 1.2 old.json new.json`.
BENCH_BASE ?= BENCH_PR8.json
bench-compare:
	$(GO) test -run '^$$' -bench=. -benchtime 100x -benchmem ./... | $(GO) run ./cmd/benchjson -o /tmp/bench-head.json
	$(GO) run ./cmd/benchjson -compare -threshold 10 $(BENCH_BASE) /tmp/bench-head.json

chaos:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -tags chaos -race ./internal/chaos -count=1

# Just the crash/recovery invariant sweeps (a subset of `make chaos`).
chaos-recovery:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -tags chaos -race ./internal/chaos -count=1 \
		-run 'CrashRecovery|SpacerJobAcrossCrashRecovery'

# Just the replication/failover invariant sweeps (a subset of `make chaos`):
# 200 seeded primary-kill / partition / promotion iterations plus the
# federated job that rides out a mid-job promotion.
chaos-failover:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -tags chaos -race ./internal/chaos -count=1 \
		-run 'FailoverReplicationInvariants|FederationJobSurvivesPrimaryFailover'

# Just the coordination-plane invariant sweeps (a subset of `make chaos`):
# 200 seeded coordinator-kill / lease-expiry-race / split-brain /
# mid-handoff-crash iterations plus rebalances racing a leader change.
chaos-coordinator:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -tags chaos -race ./internal/chaos -count=1 \
		-run 'CoordinatorChaosInvariants|RebalanceUnderCoordinatorChurn'

experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/farm
	$(GO) run ./examples/failover
	$(GO) run ./examples/airvehicle
	$(GO) run ./examples/metacompute

cover:
	$(GO) test ./internal/... -cover -count=1

clean:
	$(GO) clean ./...
