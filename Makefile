GO ?= go

.PHONY: all build vet lint test race short bench bench-smoke chaos chaos-recovery chaos-failover experiments examples cover clean

# Seed for the fault-injection suite; override to replay a sequence:
#   make chaos CHAOS_SEED=42
CHAOS_SEED ?= 1

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific invariants (clock, goroutine, lock/RPC, fault-site,
# context, lifecycle-error discipline); see DESIGN.md "Enforced invariants".
lint:
	$(GO) run ./cmd/sensorlint ./...

test:
	$(GO) test ./... -count=1

race:
	$(GO) test ./... -count=1 -race

short:
	$(GO) test ./... -count=1 -short

# Full benchmark suite; results land in $(BENCH_OUT) (op name -> ns/op,
# B/op, allocs/op) so later PRs have a perf trajectory to compare against.
BENCH_OUT ?= BENCH_PR6.json
bench:
	$(GO) test -run '^$$' -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# One iteration per benchmark: proves the suite and the JSON emitter still
# run, without CI paying for real measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime 1x -benchmem ./... | $(GO) run ./cmd/benchjson -o /dev/null

chaos:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -tags chaos -race ./internal/chaos -count=1

# Just the crash/recovery invariant sweeps (a subset of `make chaos`).
chaos-recovery:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -tags chaos -race ./internal/chaos -count=1 \
		-run 'CrashRecovery|SpacerJobAcrossCrashRecovery'

# Just the replication/failover invariant sweeps (a subset of `make chaos`):
# 200 seeded primary-kill / partition / promotion iterations plus the
# federated job that rides out a mid-job promotion.
chaos-failover:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -tags chaos -race ./internal/chaos -count=1 \
		-run 'FailoverReplicationInvariants|FederationJobSurvivesPrimaryFailover'

experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/farm
	$(GO) run ./examples/failover
	$(GO) run ./examples/airvehicle
	$(GO) run ./examples/metacompute

cover:
	$(GO) test ./internal/... -cover -count=1

clean:
	$(GO) clean ./...
