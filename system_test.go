package sensorcer

// Whole-system integration: every layer crossed at once, over real
// sockets — a lookup service exported via srpc and announced over UDP; a
// "sensor node" process boundary (its ESP reachable only through an
// accessor stub); a "compute node" boundary (its provider reachable only
// through a servicer stub); and a consumer that discovers the registrar
// dynamically, reads sensors through a façade, composes them, and exerts
// a task by federated method invocation.

import (
	"strings"
	"testing"
	"time"

	"sensorcer/internal/attr"
	"sensorcer/internal/browser"
	"sensorcer/internal/clockwork"
	"sensorcer/internal/discovery"
	"sensorcer/internal/registry"
	"sensorcer/internal/remote"
	"sensorcer/internal/sensor"
	"sensorcer/internal/sensor/probe"
	"sensorcer/internal/sorcer"
	"sensorcer/internal/spot"
	"sensorcer/internal/srpc"
)

func TestSystemEndToEndOverSockets(t *testing.T) {
	clock := clockwork.Real()

	// --- "LUS process": lookup service + srpc registrar + UDP announcer.
	lus := registry.New("system-lus", clock)
	defer lus.Close()
	lusServer := srpc.NewServer()
	if err := lusServer.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer lusServer.Close()
	remote.ServeRegistrar(lusServer, lus)

	// --- "consumer process": UDP listener resolving announcements into
	// registrar stubs.
	bus := discovery.NewBus()
	resolver := func(locator string) (registry.Registrar, error) {
		return remote.NewRegistrarClient(locator, 5*time.Second)
	}
	listener, err := discovery.NewUDPListener("127.0.0.1:0", nil, bus, resolver, clock, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	ann, err := discovery.NewAnnouncer(listener.Addr(), discovery.Packet{
		ID:      lus.ID(),
		Name:    lus.Name(),
		Groups:  []string{discovery.PublicGroup},
		Locator: lusServer.Addr(),
	}, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer ann.Stop()

	mgr := discovery.NewManager(bus)
	defer mgr.Terminate()
	deadline := time.Now().Add(5 * time.Second)
	for len(mgr.Registrars()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(mgr.Registrars()) == 0 {
		t.Fatal("UDP discovery never found the lookup service")
	}
	consumerSide := mgr.Registrars()[0].(*remote.RegistrarClient)
	defer consumerSide.Close()

	// --- "sensor node process": SPOT ESP exported as an accessor,
	// registered remotely.
	sensorServer := srpc.NewServer()
	if err := sensorServer.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer sensorServer.Close()
	dev := spot.NewDevice(spot.Config{Name: "Neem", Clock: clock})
	dev.Attach(spot.ConstantModel{Value: 21.5, UnitName: "celsius", KindName: "temperature"})
	esp := sensor.NewESP("Neem-Sensor", probe.NewSpotProbe("Neem-Sensor", dev, "temperature", nil))
	defer esp.Close()
	accDesc := remote.ServeAccessor(sensorServer, "Neem-Sensor", esp)

	providerRegistrar, err := remote.NewRegistrarClient(lusServer.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer providerRegistrar.Close()
	if _, err := providerRegistrar.Register(registry.ServiceItem{
		Service: accDesc,
		Types:   []string{sensor.AccessorType},
		Attributes: attr.Set{
			attr.Name("Neem-Sensor"),
			attr.SensorType("temperature", "celsius"),
			attr.ServiceType(sensor.CategoryElementary),
		},
	}, time.Minute); err != nil {
		t.Fatal(err)
	}

	// --- "compute node process": a Calc provider exported as a servicer.
	calcServer := srpc.NewServer()
	if err := calcServer.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer calcServer.Close()
	calc := sorcer.NewProvider("Calc-1", "Calc")
	calc.RegisterOp("scale", func(ctx *sorcer.Context) error {
		x, err := ctx.Float("in")
		if err != nil {
			return err
		}
		ctx.Put("out", x*10)
		return nil
	})
	svcDesc := remote.ServeServicer(calcServer, "Calc-1", calc)
	if _, err := providerRegistrar.Register(registry.ServiceItem{
		Service:    svcDesc,
		Types:      []string{"Calc", sorcer.ServicerType},
		Attributes: attr.Set{attr.Name("Calc-1")},
	}, time.Minute); err != nil {
		t.Fatal(err)
	}

	// --- consumer: façade read of the remote sensor. The consumer's own
	// composites are exported over its srpc server so the remote
	// registrar can carry them.
	consumerServer := srpc.NewServer()
	if err := consumerServer.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer consumerServer.Close()
	facade := sensor.NewFacade("system-facade", clock, mgr)
	facade.Network().SetExporter(remote.AccessorExporter(consumerServer))
	reading, err := facade.Network().GetValue("Neem-Sensor")
	if err != nil || reading.Value != 21.5 {
		t.Fatalf("remote sensor read = %+v, %v", reading, err)
	}

	// Compose a (local) composite over the remote sensor and read it.
	if _, err := facade.Network().ComposeService("Edge-Composite",
		[]string{"Neem-Sensor"}, "a * 2"); err != nil {
		t.Fatal(err)
	}
	cr, err := facade.Network().GetValue("Edge-Composite")
	if err != nil || cr.Value != 43 {
		t.Fatalf("composite over remote sensor = %+v, %v", cr, err)
	}

	// Exert a task against the remote compute provider (cross-process FMI).
	exerter := sorcer.NewExerter(sorcer.NewAccessor(mgr))
	task := sorcer.NewTask("t", sorcer.Sig("Calc", "scale"), sorcer.NewContextFrom("in", 4.2))
	res, err := exerter.Exert(task, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Context().Float("out")
	if err != nil || out != 42 {
		t.Fatalf("remote exertion = %v, %v", out, err)
	}

	// Browser panels over the whole network.
	ctl := browser.NewController(facade, mgr)
	listOut, err := ctl.Execute("list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"system-lus", "Neem-Sensor", "Edge-Composite"} {
		if !strings.Contains(listOut, want) {
			t.Fatalf("browser list missing %q:\n%s", want, listOut)
		}
	}
}
